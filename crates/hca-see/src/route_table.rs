//! Static routing table over the immutable Pattern-Graph topology.
//!
//! The Route Allocator's admissible-path search explores the *dynamic* graph
//! (potential arcs filtered by port budgets and already-real arcs), but the
//! dynamic graph is always a subgraph of the static one: a potential arc
//! that does not exist in the PG can never become admissible, and a node
//! with no static path to the destination can never lie on a dynamic path.
//! Since the PG is tiny (≤ ~20 nodes per sub-problem) we precompute, once
//! per SEE run, the all-pairs hop distance of the static graph under the
//! router's reachability rule — intermediate nodes must be real clusters,
//! only the final node may be special — and use it three ways:
//!
//! 1. **candidate pre-rejection**: `route_assign` drops a target cluster
//!    before any BFS when some operand producer or consumer is statically
//!    too far (the static distance lower-bounds every dynamic path length);
//! 2. **search-space pruning**: the BFS never expands into nodes whose
//!    static distance to the destination is infinite;
//! 3. **trivial answers**: `src == dst` and statically-unreachable queries
//!    are answered from the table without touching the queue.
//!
//! All three uses are *exact* — they can only skip work whose outcome is
//! already decided — so routing results are bit-identical with and without
//! the table. (A tempting fourth use, pruning on `hops + dist > budget`
//! mid-search, is **unsound** here: the search relaxes the lexicographic
//! cost `(new_ports, hops)`, so a port-cheap long path must be allowed to
//! survive even when it cannot reach the destination in budget, because its
//! queue entries block port-expensive short paths from overwriting shared
//! prefixes. Do not add it.)
//!
//! The table also owns the run's routing counters. They are atomics so the
//! parallel frontier workers can bump them without synchronisation; each
//! skip/run event happens deterministically per candidate regardless of
//! which worker evaluates it, so the *totals* are thread-count invariant
//! and safe to compare in the determinism tests.

use hca_pg::{Pg, PgNodeId};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unreachable marker in the packed distance matrix.
const INF: u16 = u16::MAX;

/// Precomputed all-pairs static hop distances of one Pattern Graph, plus
/// the routing counters of the current SEE run.
#[derive(Debug)]
pub struct RouteTable {
    /// Node count of the PG (clusters + special nodes).
    n: usize,
    /// Row-major `n × n` hop distances; `INF` = statically unreachable.
    dist: Vec<u16>,
    /// Dynamic admissible-path searches actually executed.
    bfs_runs: AtomicUsize,
    /// Queries answered (or candidates rejected) from the static table
    /// without running a search.
    cache_hits: AtomicUsize,
}

impl RouteTable {
    /// Build the table from the PG's potential arcs: one BFS per source,
    /// expanding only through real clusters (the source itself may be a
    /// special node — a path may *start* anywhere, e.g. on a glue-in input
    /// node — and any node may *end* a path).
    pub fn build(pg: &Pg) -> Self {
        let n = pg.num_nodes();
        let mut dist = vec![INF; n * n];
        let mut queue: Vec<PgNodeId> = Vec::with_capacity(n);
        for src in 0..n {
            let row = src * n;
            dist[row + src] = 0;
            queue.clear();
            queue.push(PgNodeId(src as u32));
            let mut head = 0;
            while head < queue.len() {
                let cur = queue[head];
                head += 1;
                // Only the source and real clusters forward; a special node
                // reached mid-search terminates its branch.
                if cur.index() != src && !pg.node(cur).kind.is_cluster() {
                    continue;
                }
                let d = dist[row + cur.index()];
                for &next in pg.potential_succs(cur) {
                    let slot = row + next.index();
                    if dist[slot] == INF {
                        dist[slot] = d + 1;
                        queue.push(next);
                    }
                }
            }
        }
        RouteTable {
            n,
            dist,
            bfs_runs: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// Number of PG nodes the table covers.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Static hop distance `src → dst` (0 for `src == dst`), or `None` when
    /// no path whose intermediate nodes are all clusters exists.
    #[inline]
    pub fn hop_dist(&self, src: PgNodeId, dst: PgNodeId) -> Option<u32> {
        let d = self.dist[src.index() * self.n + dst.index()];
        (d != INF).then_some(u32::from(d))
    }

    /// Is `dst` statically reachable from `src` at all?
    #[inline]
    pub fn reachable(&self, src: PgNodeId, dst: PgNodeId) -> bool {
        self.dist[src.index() * self.n + dst.index()] != INF
    }

    /// Record one executed admissible-path search.
    #[inline]
    pub(crate) fn count_bfs(&self) {
        self.bfs_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one query answered from the static table alone.
    #[inline]
    pub(crate) fn count_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Drain the `(bfs_runs, cache_hits)` counters, resetting them to zero
    /// — called once at the end of a run to fold them into `SeeStats`.
    pub fn take_counters(&self) -> (usize, usize) {
        (
            self.bfs_runs.swap(0, Ordering::Relaxed),
            self.cache_hits.swap(0, Ordering::Relaxed),
        )
    }

    /// Approximate heap footprint of the table: the packed `n × n`
    /// distance matrix plus the struct itself. Feeds the
    /// `see.route_table_bytes` size accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.dist.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{Ili, IliWire};

    /// Independent oracle: Floyd–Warshall restricted to cluster
    /// intermediates, over the same potential-arc relation.
    fn oracle(pg: &Pg) -> Vec<Vec<Option<u32>>> {
        let n = pg.num_nodes();
        let ids: Vec<PgNodeId> = (0..n as u32).map(PgNodeId).collect();
        let mut d: Vec<Vec<Option<u32>>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            Some(0)
                        } else if pg.is_potential(ids[i], ids[j]) {
                            Some(1)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        for k in 0..n {
            if !pg.node(ids[k]).kind.is_cluster() {
                continue; // special nodes never forward
            }
            for i in 0..n {
                for j in 0..n {
                    if let (Some(a), Some(b)) = (d[i][k], d[k][j]) {
                        if d[i][j].is_none_or(|c| a + b < c) {
                            d[i][j] = Some(a + b);
                        }
                    }
                }
            }
        }
        d
    }

    fn assert_matches_oracle(pg: &Pg, what: &str) {
        let rt = RouteTable::build(pg);
        let want = oracle(pg);
        let n = pg.num_nodes();
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert_eq!(
                    rt.hop_dist(PgNodeId(i), PgNodeId(j)),
                    want[i as usize][j as usize],
                    "{what}: dist({i}, {j})"
                );
            }
        }
    }

    /// A small deterministic LCG so the "random PG" sweep needs no RNG crate
    /// in this crate's dev-deps.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn complete_pg_distances_match_oracle() {
        let pg = Pg::complete(8, ResourceTable::of_cns(8));
        assert_matches_oracle(&pg, "complete8");
    }

    #[test]
    fn ring_distances_match_oracle() {
        for (clusters, reach) in [(4, 1), (6, 1), (8, 2), (8, 3)] {
            let rcp = Rcp::new(clusters, reach, 2, |_| true);
            let pg = Pg::from_rcp(&rcp);
            assert_matches_oracle(&pg, &format!("ring{clusters}/reach{reach}"));
        }
    }

    #[test]
    fn random_pgs_with_ili_match_oracle() {
        // Random shapes: varying ring reach and randomly attached ILIs make
        // the special-node rule (never forward, always terminable) matter.
        let mut rng = Lcg(0x5EED_CAFE);
        for case in 0..40 {
            let clusters = 2 + (rng.next() % 7) as usize;
            let reach = 1 + (rng.next() % (clusters as u64 - 1)) as usize;
            let rcp = Rcp::new(clusters, reach, 2, |_| true);
            let mut pg = Pg::from_rcp(&rcp);

            let mut b = DdgBuilder::default();
            let vals: Vec<_> = (0..6).map(|_| b.node(Opcode::Add)).collect();
            let _ddg = b.finish();
            let n_in = (rng.next() % 3) as usize;
            let n_out = (rng.next() % 3) as usize;
            let ili = Ili {
                inputs: (0..n_in).map(|i| IliWire::new(vec![vals[i]])).collect(),
                outputs: (0..n_out)
                    .map(|i| IliWire::new(vec![vals[3 + i]]))
                    .collect(),
            };
            pg.attach_ili(&ili);
            assert_matches_oracle(&pg, &format!("random case {case}"));
        }
    }

    #[test]
    fn special_nodes_terminate_but_never_forward() {
        // Ring of 4, reach 1, one input and one output node.
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let mut pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Add);
        let _ddg = b.finish();
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![x])],
            outputs: vec![IliWire::new(vec![y])],
        });
        let rt = RouteTable::build(&pg);
        let inp = pg.input_ids().next().unwrap();
        let out = pg.output_ids().next().unwrap();
        // The input node feeds clusters but no path may pass *through* the
        // output node, and nothing is reachable *from* it.
        assert!(rt.reachable(inp, out));
        for c in pg.cluster_ids() {
            assert!(rt.reachable(inp, c), "input reaches {c}");
            assert!(rt.reachable(c, out), "{c} reaches output");
            assert_eq!(rt.hop_dist(out, c), None, "output must not forward");
        }
    }

    #[test]
    fn counters_drain_and_reset() {
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let rt = RouteTable::build(&pg);
        rt.count_bfs();
        rt.count_hit();
        rt.count_hit();
        assert_eq!(rt.take_counters(), (1, 2));
        assert_eq!(rt.take_counters(), (0, 0));
    }
}
