//! Candidate and node filters (paper §3, Figure 5).
//!
//! The candidate filter reduces the per-node candidate list before the
//! partial solution forks; the node filter "prunes low-quality partial
//! solutions" to keep the frontier — the grey zone of Figure 5 — of limited
//! size (beam search).

use crate::state::PartialState;
use hca_pg::PgNodeId;
use smallvec::SmallVec;

/// Scored candidates of one (state, node) pair. Inline capacity covers the
/// common fan-out so the per-state scoring loop performs no heap allocation.
pub type CandList = SmallVec<[(PgNodeId, f64); 8]>;

/// Reduces the list of scored candidates for one DDG node.
#[derive(Clone, Copy, Debug)]
pub struct CandidateFilter {
    /// Keep at most this many candidates (branch factor of the search tree).
    pub branch_factor: usize,
    /// Drop candidates costing more than `best + margin` — "too severe" a
    /// margin is one of the paper's two no-candidate causes, so keep it wide
    /// by default.
    pub margin: f64,
}

impl Default for CandidateFilter {
    fn default() -> Self {
        CandidateFilter {
            branch_factor: 3,
            margin: 16.0,
        }
    }
}

/// How many candidates [`CandidateFilter::apply`] rejected, by rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CandidatePruning {
    /// Rejected for costing more than `best + margin`.
    pub by_margin: usize,
    /// Rejected by truncation to the branch factor.
    pub by_branch: usize,
}

/// Per-expansion counters of the batched scoring kernel
/// ([`crate::assignable::score_candidates_batched`]), reported next to
/// [`CandidatePruning`] and folded into
/// [`SeeStats`](crate::engine::SeeStats) by the engine. All three stay zero
/// when batching is disabled (`SeeConfig::batched_scoring` / `HCA_NO_BATCH`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Candidates scored through lane batches.
    pub lanes_scored: usize,
    /// Lane batches flushed (each scores up to `LANES` candidates per pass;
    /// sub-width remainders flush as one partial batch at their real width).
    pub lane_batches: usize,
    /// Candidates the scalar path scored while batching was on: views the
    /// lane fold cannot express (no fast producer view because two edges
    /// share an `(arc, value)` pair, or more than 32 producer/consumer
    /// edges) plus expansions too small to repay batch setup.
    pub scalar_tail: usize,
}

impl LaneStats {
    /// Fold another expansion's counters into this one.
    #[inline]
    pub fn absorb(&mut self, other: LaneStats) {
        self.lanes_scored += other.lanes_scored;
        self.lane_batches += other.lane_batches;
        self.scalar_tail += other.scalar_tail;
    }
}

impl CandidateFilter {
    /// Filter `candidates` (cluster, objective) in place: sort ascending by
    /// cost (ties by cluster id for determinism), apply the margin, truncate
    /// to the branch factor. Returns how many candidates each rule dropped.
    pub fn apply(&self, candidates: &mut CandList) -> CandidatePruning {
        candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let before = candidates.len();
        if let Some(&(_, best)) = candidates.first() {
            let cutoff = best + self.margin;
            // A NaN margin (degenerate config) makes the cutoff NaN and
            // `c <= NaN` false for every candidate — the filter would drop
            // the whole list, including `best` itself. Treat a non-finite
            // cutoff as "no margin pruning" instead.
            if cutoff.is_finite() {
                candidates.retain(|&(_, c)| c <= cutoff);
            }
        }
        let by_margin = before - candidates.len();
        let after_margin = candidates.len();
        candidates.truncate(self.branch_factor);
        CandidatePruning {
            by_margin,
            by_branch: after_margin - candidates.len(),
        }
    }
}

/// Prunes the frontier of partial solutions back to the beam width.
#[derive(Clone, Copy, Debug)]
pub struct NodeFilter {
    /// Maximum surviving partial solutions per step.
    pub beam_width: usize,
}

impl Default for NodeFilter {
    fn default() -> Self {
        NodeFilter { beam_width: 8 }
    }
}

impl NodeFilter {
    /// Keep the `beam_width` cheapest states (stable on cost ties, so the
    /// search is deterministic). Returns the number of states pruned.
    pub fn apply(&self, frontier: &mut Vec<PartialState>) -> usize {
        frontier.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        let before = frontier.len();
        frontier.truncate(self.beam_width);
        before - frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_filter_sorts_margins_and_truncates() {
        let f = CandidateFilter {
            branch_factor: 2,
            margin: 5.0,
        };
        let mut cands: CandList = smallvec::smallvec![
            (PgNodeId(0), 10.0),
            (PgNodeId(1), 3.0),
            (PgNodeId(2), 7.0),
            (PgNodeId(3), 4.0),
        ];
        let pruned = f.apply(&mut cands);
        // 10.0 dropped by margin (3+5=8), then truncation to 2.
        assert_eq!(cands.as_slice(), [(PgNodeId(1), 3.0), (PgNodeId(3), 4.0)]);
        assert_eq!(
            pruned,
            CandidatePruning {
                by_margin: 1,
                by_branch: 1
            }
        );
    }

    #[test]
    fn candidate_filter_tie_break_is_deterministic() {
        let f = CandidateFilter::default();
        let mut cands: CandList =
            smallvec::smallvec![(PgNodeId(2), 1.0), (PgNodeId(0), 1.0), (PgNodeId(1), 1.0)];
        f.apply(&mut cands);
        assert_eq!(
            cands.iter().map(|c| c.0).collect::<Vec<_>>(),
            vec![PgNodeId(0), PgNodeId(1), PgNodeId(2)]
        );
    }

    #[test]
    fn candidate_filter_nan_margin_keeps_candidates() {
        let f = CandidateFilter {
            branch_factor: 3,
            margin: f64::NAN,
        };
        let mut cands: CandList = smallvec::smallvec![
            (PgNodeId(0), 10.0),
            (PgNodeId(1), 3.0),
            (PgNodeId(2), 7.0),
            (PgNodeId(3), 4.0),
        ];
        let pruned = f.apply(&mut cands);
        // Margin pruning is disabled; only the branch factor truncates.
        assert_eq!(
            cands.as_slice(),
            [(PgNodeId(1), 3.0), (PgNodeId(3), 4.0), (PgNodeId(2), 7.0)]
        );
        assert_eq!(
            pruned,
            CandidatePruning {
                by_margin: 0,
                by_branch: 1
            }
        );
    }

    #[test]
    fn candidate_filter_empty_ok() {
        let f = CandidateFilter::default();
        let mut cands = CandList::new();
        f.apply(&mut cands);
        assert!(cands.is_empty());
    }
}
