//! # hca-see — the Space Exploration Engine
//!
//! The SEE is the paper's single-level Instruction Cluster Assignment core
//! (§3, Figures 4–5): "a local-scope based algorithm schema, which maintains
//! a limited exploration frontier". It is a beam search over *partial
//! solutions*:
//!
//! 1. pick the next DDG node from a **priority list** of unassigned ones;
//! 2. for every Pattern-Graph cluster, check **isAssignable** (resource
//!    consumption + availability of communication patterns);
//! 3. score each candidate with a weighted **objective function** built from
//!    cost criteria (copy count, copy pressure / estimated MII, load balance,
//!    critical-path stretch, recurrence stretch);
//! 4. reduce the candidate list with the **candidate filter**, fork the
//!    partial solution per surviving candidate;
//! 5. prune the frontier back to the beam width with the **node filter**;
//! 6. when *no candidates* exist, run the configurable **no-candidates
//!    action** — by default the **Route Allocator**, which places the node
//!    anyway and routes its operands through intermediate clusters
//!    (Figure 6b).
//!
//! The engine is generic over the Pattern Graph: a complete PG (a DSPFabric
//! level), a ring PG (RCP) or a PG completed with ILI special nodes all run
//! through the same code path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assignable;
pub mod bounds;
pub mod cost;
pub mod engine;
pub mod exact;
pub mod filters;
mod frontier;
pub mod neighbors;
pub mod route;
pub mod route_table;
pub mod state;
pub mod statics;

pub use assignable::{
    node_view, score_candidates_batched, score_candidates_batched_tuned, score_if_assignable,
    NodeView, LANES, SCALAR_CUTOFF,
};
pub use bounds::{mii_lower_bound, MiiLowerBound};
pub use cost::CostWeights;
pub use engine::{See, SeeConfig, SeeError, SeeOutcome, SeeStats, STEP_SAMPLE_CAP};
pub use exact::{solution_score, ExactConfig, ExactOutcome};
pub use filters::{CandList, LaneStats};
pub use route_table::RouteTable;
pub use state::{PartialState, SeeContext};
