//! Flat bit-matrix adjacency rows for [`PartialState`].
//!
//! The state tracks, per PG node, the set of distinct real neighbours its
//! copy flow has opened. PG sub-problems are small (a handful of clusters
//! plus glue nodes), but the beam engine clones and compares states in its
//! innermost loop — a `Vec<FxHashSet<_>>` representation pays one heap
//! allocation per node per clone and a hash-set walk per equality check,
//! which profiles as an allocator storm. One flat `Vec<u64>` bit matrix
//! (row = PG node, bit = neighbour id) makes a clone one `memcpy`, equality
//! one slice compare, and membership one shift-and-mask.
//!
//! [`PartialState`]: crate::state::PartialState

use hca_pg::PgNodeId;

/// Per-PG-node neighbour sets as one flat bit matrix.
///
/// Row `i` holds the neighbour set of PG node `i`; bit `j` of the row marks
/// `PgNodeId(j)` as a member. Rows are `stride` words wide, sized for the
/// sub-problem's PG node count at construction.
#[derive(Debug, PartialEq, Eq)]
pub struct NeighborSets {
    words: Vec<u64>,
    stride: usize,
}

impl Clone for NeighborSets {
    fn clone(&self) -> Self {
        NeighborSets {
            words: self.words.clone(),
            stride: self.stride,
        }
    }

    /// Reuse the existing word buffer (the state arena recycles frontier
    /// states, so `clone_from` must not reallocate when shapes match).
    fn clone_from(&mut self, src: &Self) {
        self.words.clone_from(&src.words);
        self.stride = src.stride;
    }
}

impl NeighborSets {
    /// Empty sets for a PG with `n` nodes (both row count and id range).
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(64).max(1);
        NeighborSets {
            words: vec![0; n * stride],
            stride,
        }
    }

    /// Number of rows (PG nodes) the matrix was sized for.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.words.len() / self.stride
    }

    #[inline]
    fn slot(&self, row: usize, id: PgNodeId) -> (usize, u64) {
        let bit = id.index();
        debug_assert!(row < self.num_rows() && bit < self.stride * 64);
        (row * self.stride + bit / 64, 1u64 << (bit % 64))
    }

    /// Add `id` to row `row`; `true` if it was not already a member.
    #[inline]
    pub fn insert(&mut self, row: usize, id: PgNodeId) -> bool {
        let (w, mask) = self.slot(row, id);
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Remove `id` from row `row`.
    #[inline]
    pub fn remove(&mut self, row: usize, id: PgNodeId) {
        let (w, mask) = self.slot(row, id);
        self.words[w] &= !mask;
    }

    /// Is `id` a member of row `row`?
    #[inline]
    pub fn contains(&self, row: usize, id: PgNodeId) -> bool {
        let (w, mask) = self.slot(row, id);
        self.words[w] & mask != 0
    }

    /// Cardinality of row `row`.
    #[inline]
    pub fn len(&self, row: usize) -> usize {
        self.words[row * self.stride..(row + 1) * self.stride]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Is row `row` empty?
    #[inline]
    pub fn is_empty(&self, row: usize) -> bool {
        self.words[row * self.stride..(row + 1) * self.stride]
            .iter()
            .all(|&w| w == 0)
    }

    /// Members of row `row`, in ascending id order.
    pub fn iter(&self, row: usize) -> impl Iterator<Item = PgNodeId> + '_ {
        self.words[row * self.stride..(row + 1) * self.stride]
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| {
                let base = (wi * 64) as u32;
                BitIter(w).map(move |b| PgNodeId(base + b))
            })
    }

    /// Words per row (shared by every bitmask over this PG's node ids).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Raw bit words of row `row` — the candidate-mask machinery ANDs these
    /// in bulk against per-node masks of the same stride.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        &self.words[row * self.stride..(row + 1) * self.stride]
    }

    /// Heap bytes held (for the engine's frontier-memory accounting).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Iterator over the set bit positions of one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = NeighborSets::new(70); // two words per row
        assert_eq!(s.num_rows(), 70);
        assert!(s.is_empty(3));
        assert!(s.insert(3, PgNodeId(5)));
        assert!(!s.insert(3, PgNodeId(5)), "re-insert reports non-fresh");
        assert!(s.insert(3, PgNodeId(69)));
        assert!(s.contains(3, PgNodeId(5)));
        assert!(s.contains(3, PgNodeId(69)));
        assert!(!s.contains(3, PgNodeId(6)));
        assert!(!s.contains(4, PgNodeId(5)), "rows are independent");
        assert_eq!(s.len(3), 2);
        assert_eq!(
            s.iter(3).collect::<Vec<_>>(),
            vec![PgNodeId(5), PgNodeId(69)]
        );
        s.remove(3, PgNodeId(5));
        assert!(!s.contains(3, PgNodeId(5)));
        assert_eq!(s.len(3), 1);
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = NeighborSets::new(10);
        let mut b = NeighborSets::new(10);
        a.insert(1, PgNodeId(2));
        assert_ne!(a, b);
        b.insert(1, PgNodeId(2));
        assert_eq!(a, b);
    }
}
