//! Property-based tests of the Space Exploration Engine: any schedulable
//! random DDG assigned onto any complete Pattern Graph must come out fully
//! assigned, flow-conserving and constraint-clean.

use hca_arch::ResourceTable;
use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, NodeId, Opcode};
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig};
use proptest::prelude::*;

/// A random layered DAG with optional carried accumulators (no external
/// crates: generated from proptest's own entropy).
fn ddg_strategy() -> impl Strategy<Value = Ddg> {
    (
        2usize..24,
        proptest::collection::vec((0usize..100, 0usize..100, any::<bool>()), 1..40),
        0usize..3,
    )
        .prop_map(|(n, raw_edges, accs)| {
            let mut b = DdgBuilder::default();
            let ops = [Opcode::Add, Opcode::Mul, Opcode::Shift, Opcode::Logic];
            let nodes: Vec<NodeId> = (0..n).map(|i| b.node(ops[i % ops.len()])).collect();
            for (x, y, _) in raw_edges {
                let (a, c) = (x % n, y % n);
                if a < c {
                    b.flow(nodes[a], nodes[c]); // forward-only: acyclic
                }
            }
            for &node in nodes.iter().take(accs.min(n)) {
                b.carried(node, node, 1);
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn see_output_is_flow_conserving(
        ddg in ddg_strategy(),
        clusters in 2usize..6,
        max_in in 2u32..6,
    ) {
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(clusters, ResourceTable::of_cns(4));
        let cons = ArchConstraints {
            max_in_neighbors: max_in,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        let see = See::new(&ddg, &an, &pg, cons, SeeConfig::default());
        let Ok(out) = see.run(None) else {
            // Tight ports can legitimately defeat the search on dense DDGs.
            return Ok(());
        };
        for n in ddg.node_ids() {
            prop_assert!(out.assigned.cluster_of(n).is_some(), "{:?}", n);
        }
        let ws: Vec<NodeId> = ddg.node_ids().collect();
        let errs = out.assigned.check_flow(&ddg, &ws);
        prop_assert!(errs.is_empty(), "{errs:?}");
        prop_assert!(cons.check(&out.assigned).is_ok());
        // The estimate is a true lower-bound style quantity: at least the
        // recurrence MII and at least the perfect-balance issue bound.
        let per_cluster = (ddg.num_nodes() as u32).div_ceil(4 * clusters as u32);
        prop_assert!(out.est_mii >= an.mii_rec.max(per_cluster).max(1));
    }

    #[test]
    fn chain_fallback_always_legal_when_it_applies(
        ddg in ddg_strategy(),
        clusters in 2usize..6,
    ) {
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(clusters, ResourceTable::of_cns(4));
        let cons = ArchConstraints {
            max_in_neighbors: 2,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        let see = See::new(&ddg, &an, &pg, cons, SeeConfig::default());
        if let Some(out) = see.chain_fallback(None) {
            let ws: Vec<NodeId> = ddg.node_ids().collect();
            let errs = out.assigned.check_flow(&ddg, &ws);
            prop_assert!(errs.is_empty(), "{errs:?}");
        }
        if let Some(out) = see.layered_fallback(None) {
            let ws: Vec<NodeId> = ddg.node_ids().collect();
            let errs = out.assigned.check_flow(&ddg, &ws);
            prop_assert!(errs.is_empty(), "{errs:?}");
        }
    }
}
