//! The engine's search-trace contract: one `step` record per placement
//! step whose deltas agree with the aggregate [`SeeStats`] counters, and a
//! bit-identical outcome whether a tracer is attached or not.

use hca_arch::ResourceTable;
use hca_ddg::{DdgAnalysis, DdgBuilder, Opcode};
use hca_obs::trace::{kind, TOP_K};
use hca_obs::SearchTracer;
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig};

fn constraints() -> ArchConstraints {
    ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    }
}

fn mixed_ddg() -> hca_ddg::Ddg {
    let mut b = DdgBuilder::default();
    for i in 0..6 {
        let x = b.node(Opcode::Load);
        let y = b.node(if i % 2 == 0 { Opcode::Mul } else { Opcode::Add });
        b.flow(x, y);
    }
    b.finish()
}

#[test]
fn traced_run_emits_one_step_record_per_placement() {
    let ddg = mixed_ddg();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(2));
    let tracer = SearchTracer::enabled();
    let see = See::new(&ddg, &an, &pg, constraints(), SeeConfig::default())
        .with_tracer(tracer.scoped("root", 0, 1));
    let out = see.run(None).unwrap();

    let steps: Vec<_> = tracer
        .records()
        .into_iter()
        .filter(|r| r.kind == kind::STEP)
        .collect();
    assert_eq!(steps.len(), out.stats.steps);
    // Scope is stamped onto every record.
    assert!(steps.iter().all(|r| r.problem == "root" && r.tier == 1));
    // Step indices are sequential; per-step deltas sum to the aggregates.
    for (i, r) in steps.iter().enumerate() {
        assert_eq!(r.step as usize, i);
        assert!(r.beam >= 1);
        assert!(r.cands.len() <= TOP_K);
    }
    let explored: u64 = steps.iter().map(|r| r.explored).sum();
    assert_eq!(explored, out.stats.states_explored as u64);
    let pruned: u64 = steps.iter().map(|r| r.pruned_beam + r.dominated).sum();
    assert_eq!(pruned, out.stats.states_pruned as u64);
    let margin: u64 = steps.iter().map(|r| r.rej_margin).sum();
    assert_eq!(margin, out.stats.cand_rejected_margin as u64);
    let ns: u64 = steps.iter().map(|r| r.ns).sum();
    assert_eq!(ns, out.stats.step_time_total_ns);
    // Each step's surviving beam matches the occupancy sample.
    for (r, &occ) in steps.iter().zip(&out.stats.beam_occupancy) {
        assert_eq!(r.beam as usize, occ);
    }
    // On a fully connected uncongested fabric nothing needs rescue.
    assert!(steps.iter().all(|r| !r.rescued));
    // Candidates are sorted best-first.
    for r in &steps {
        for w in r.cands.windows(2) {
            assert!(w[0].1 <= w[1].1, "cands not sorted: {:?}", r.cands);
        }
    }
}

#[test]
fn tracer_attachment_does_not_change_the_outcome() {
    let ddg = mixed_ddg();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(2));
    let plain = See::new(&ddg, &an, &pg, constraints(), SeeConfig::default())
        .run(None)
        .unwrap();
    let traced = See::new(&ddg, &an, &pg, constraints(), SeeConfig::default())
        .with_tracer(SearchTracer::enabled())
        .run(None)
        .unwrap();
    assert_eq!(plain.cost, traced.cost);
    assert_eq!(plain.est_mii, traced.est_mii);
    assert_eq!(plain.mii_issue, traced.mii_issue);
    assert_eq!(plain.mii_arc, traced.mii_arc);
    assert_eq!(plain.assigned.assignment, traced.assigned.assignment);
    assert_eq!(plain.stats.states_explored, traced.stats.states_explored);
    assert_eq!(plain.stats.beam_occupancy, traced.stats.beam_occupancy);
}

#[test]
fn est_mii_components_compose_the_estimate() {
    let ddg = mixed_ddg();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(2));
    let out = See::new(&ddg, &an, &pg, constraints(), SeeConfig::default())
        .run(None)
        .unwrap();
    let expect = an.mii_rec.max(out.mii_issue).max(out.mii_arc).max(1);
    assert_eq!(out.est_mii, expect);
}
