//! Consistency of the [`SeeStats`] counters feeding the observability
//! layer: the new pruning/occupancy counters must agree with each other
//! and with the frontier arithmetic of the beam search.

use hca_arch::ResourceTable;
use hca_ddg::{DdgAnalysis, DdgBuilder, Opcode};
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig, SeeOutcome};

fn constraints() -> ArchConstraints {
    ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    }
}

/// 8 independent 2-op chains — wide enough to overflow narrow beams.
fn wide_ddg() -> hca_ddg::Ddg {
    let mut b = DdgBuilder::default();
    for _ in 0..8 {
        let x = b.node(Opcode::Load);
        let y = b.node(Opcode::Add);
        b.flow(x, y);
    }
    b.finish()
}

fn run(config: SeeConfig) -> SeeOutcome {
    let ddg = wide_ddg();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(2));
    let see = See::new(&ddg, &an, &pg, constraints(), config);
    see.run(None).unwrap()
}

#[test]
fn explored_splits_into_pruned_plus_occupancy() {
    for beam_width in [1, 2, 8, 64] {
        let out = run(SeeConfig {
            beam_width,
            ..SeeConfig::default()
        });
        let s = &out.stats;
        // The exact running total is the invariant's right-hand side; the
        // sampled vector must agree while the run is under the sample cap.
        assert_eq!(
            s.states_explored,
            s.states_pruned + s.beam_occupancy_sum,
            "beam {beam_width}: explored {} != pruned {} + occupancy {}",
            s.states_explored,
            s.states_pruned,
            s.beam_occupancy_sum,
        );
        assert_eq!(s.beam_occupancy.iter().sum::<usize>(), s.beam_occupancy_sum);
        assert_eq!(s.step_time_ns.iter().sum::<u64>(), s.step_time_total_ns);
    }
}

#[test]
fn beam_occupancy_tracks_every_placement_step_within_width() {
    let out = run(SeeConfig {
        beam_width: 4,
        ..SeeConfig::default()
    });
    let s = &out.stats;
    // One entry per placed node, each within the beam width and non-empty.
    assert_eq!(s.steps, wide_ddg().num_nodes());
    assert_eq!(s.beam_occupancy.len(), wide_ddg().num_nodes());
    assert!(s.beam_occupancy.iter().all(|&w| (1..=4).contains(&w)));
}

#[test]
fn step_samples_are_bounded_but_totals_stay_exact() {
    use hca_see::{SeeStats, STEP_SAMPLE_CAP};
    let mut s = SeeStats::default();
    let n = STEP_SAMPLE_CAP + 1500;
    for i in 0..n {
        s.record_step(2, (i % 7) as u64);
    }
    assert_eq!(s.steps, n);
    assert_eq!(s.beam_occupancy_sum, 2 * n);
    assert_eq!(
        s.step_time_total_ns,
        (0..n as u64).map(|i| i % 7).sum::<u64>()
    );
    // Sample vectors stop growing at the cap — statistics stay bounded on
    // arbitrarily large DDGs.
    assert_eq!(s.beam_occupancy.len(), STEP_SAMPLE_CAP);
    assert_eq!(s.step_time_ns.len(), STEP_SAMPLE_CAP);
}

#[test]
fn route_table_bytes_accounted_on_every_outcome() {
    let out = run(SeeConfig::default());
    // Pg::complete(4, ..) has 4 nodes → at least 4*4 u16 distances.
    assert!(
        out.stats.route_table_bytes >= 32,
        "route_table_bytes {} too small",
        out.stats.route_table_bytes
    );
}

#[test]
fn wider_beams_explore_monotonically_more_states() {
    let mut last = 0usize;
    for beam_width in [1, 2, 4, 16] {
        let out = run(SeeConfig {
            beam_width,
            ..SeeConfig::default()
        });
        assert!(
            out.stats.states_explored >= last,
            "beam {beam_width} explored {} < previous {last}",
            out.stats.states_explored
        );
        last = out.stats.states_explored;
    }
}

#[test]
fn branch_factor_one_rejects_all_runners_up() {
    // With branch factor 1 every state forks once, so no state is ever
    // pruned by the beam and every runner-up candidate is rejected.
    let out = run(SeeConfig {
        beam_width: 8,
        branch_factor: 1,
        candidate_margin: f64::INFINITY,
        ..SeeConfig::default()
    });
    let s = &out.stats;
    assert_eq!(s.states_pruned, 0);
    assert_eq!(s.cand_rejected_margin, 0);
    assert!(s.cand_rejected_branch > 0);
    assert!(s.beam_occupancy.iter().all(|&w| w == 1));
}

#[test]
fn zero_margin_moves_rejections_to_the_margin_rule() {
    let strict = run(SeeConfig {
        candidate_margin: 0.0,
        ..SeeConfig::default()
    });
    assert!(
        strict.stats.cand_rejected_margin > 0,
        "a zero margin must reject some scored candidate"
    );
}

#[test]
fn counters_are_zero_only_where_meaningful() {
    let out = run(SeeConfig::default());
    let s = &out.stats;
    assert!(s.states_explored > 0);
    // This fabric is fully connected and uncongested: no routing rescue.
    assert_eq!(s.route_attempts, 0);
    assert_eq!(s.routed_nodes, 0);
    assert_eq!(s.routed_hops, 0);
}
