//! The simulator: cycle-by-cycle execution of the folded kernel.

use crate::values::{const_value, eval, live_in, reference_run, StoreLog};
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::{analysis, NodeId, Opcode};
use hca_sched::KernelSchedule;
use rustc_hash::FxHashMap;
use std::fmt;

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// All stored values, sorted by (store node, iteration).
    pub stores: StoreLog,
    /// Total cycles executed (passes × II).
    pub cycles: u64,
    /// Observed input-buffer high-water mark per CN: how many received
    /// values were simultaneously live in the CN's buffer regions (§2.2),
    /// prologue/epilogue transients included.
    pub buffer_high_water: Vec<u32>,
}

/// Why simulation (or verification) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// An operand had not been produced — or had not covered its latency —
    /// when its consumer issued: a cluster-assignment or scheduling bug.
    OperandNotReady {
        /// Consuming node.
        node: NodeId,
        /// Iteration being executed.
        iter: u64,
        /// The missing operand's producer.
        operand: NodeId,
        /// Global cycle of the attempted issue.
        cycle: u64,
    },
    /// A stored value differed from the sequential reference.
    Mismatch {
        /// Store node.
        node: NodeId,
        /// Iteration.
        iter: u64,
        /// Reference value.
        expected: i64,
        /// Simulated value.
        got: i64,
    },
    /// Store logs differ in shape (missing/extra stores).
    LogShape {
        /// Stores in the reference log.
        expected: usize,
        /// Stores in the simulated log.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OperandNotReady {
                node,
                iter,
                operand,
                cycle,
            } => write!(
                f,
                "operand {operand} of {node} not ready at iteration {iter}, cycle {cycle}"
            ),
            SimError::Mismatch {
                node,
                iter,
                expected,
                got,
            } => write!(
                f,
                "store {node} iteration {iter}: expected {expected}, got {got}"
            ),
            SimError::LogShape { expected, got } => {
                write!(f, "store log shape: expected {expected} entries, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Verification report.
#[derive(Clone, Copy, Debug)]
pub struct SimReport {
    /// Iterations executed.
    pub trip: u64,
    /// Total machine cycles.
    pub cycles: u64,
    /// Stored values compared against the reference.
    pub stores_checked: usize,
    /// Kernel initiation interval.
    pub ii: u32,
    /// Steady-state issue-slot utilisation.
    pub utilization: f64,
    /// Worst observed input-buffer occupancy across CNs.
    pub max_buffered: u32,
}

/// Execute the folded kernel for `trip` iterations.
pub fn simulate(
    fp: &FinalProgram,
    fabric: &DspFabric,
    kernel: &KernelSchedule,
    trip: u64,
) -> Result<SimOutput, SimError> {
    let ddg = &fp.ddg;
    let topo_pos: Vec<usize> = {
        let topo = analysis::intra_topo_order(ddg).expect("schedulable final DDG");
        let mut pos = vec![0usize; ddg.num_nodes()];
        for (i, &n) in topo.iter().enumerate() {
            pos[n.index()] = i;
        }
        pos
    };

    // (node, iteration) → (value, issue cycle).
    let mut computed: FxHashMap<(NodeId, u64), (i64, u64)> = FxHashMap::default();
    let mut stores = StoreLog::new();
    // Input-buffer tracking: each executed recv instance occupies a buffer
    // entry from its arrival until its last local read.
    let mut recv_instances: Vec<(NodeId, u64, u64)> = Vec::new(); // (recv, iter, arrival)
    let passes = kernel.total_passes(trip);
    let ii = u64::from(kernel.ii);

    for pass in 0..passes {
        for cyc in 0..kernel.ii {
            let global = pass * ii + u64::from(cyc);
            // Every CN issues its slot "simultaneously"; zero-latency
            // same-cycle chains are honoured by topological ordering.
            let mut issuing: Vec<(NodeId, u64)> = Vec::new();
            for cn in fabric.cn_ids() {
                if let Some(op) = kernel.op_at(cn, cyc) {
                    if kernel.stage_active(op.stage, pass, trip) {
                        let iter = pass - u64::from(op.stage);
                        issuing.push((op.node, iter));
                    }
                }
            }
            issuing.sort_by_key(|&(n, _)| topo_pos[n.index()]);

            for (n, iter) in issuing {
                let node = ddg.node(n);
                let mut args = Vec::new();
                let mut ready = Ok(());
                for (_, e) in ddg.pred_edges(n) {
                    if ddg.node(e.src).op == Opcode::Const {
                        // Constants are preloaded into every register file.
                        args.push(const_value(e.src));
                        continue;
                    }
                    let v = if iter >= u64::from(e.distance) {
                        let key = (e.src, iter - u64::from(e.distance));
                        match computed.get(&key) {
                            Some(&(v, t)) if t + u64::from(e.latency) <= global => v,
                            _ => {
                                ready = Err(SimError::OperandNotReady {
                                    node: n,
                                    iter,
                                    operand: e.src,
                                    cycle: global,
                                });
                                break;
                            }
                        }
                    } else {
                        live_in(e.src, e.distance)
                    };
                    args.push(v);
                }
                ready?;
                let v = match node.op {
                    Opcode::Const => const_value(n),
                    op => eval(op, &args),
                };
                computed.insert((n, iter), (v, global));
                if node.op == Opcode::Store {
                    stores.push((n, iter, v));
                }
                if node.op == Opcode::Recv {
                    recv_instances.push((n, iter, global));
                }
            }
        }
    }
    stores.sort_unstable();

    // Post-pass: buffer occupancy per CN as max interval overlap.
    let mut events: Vec<Vec<(u64, i32)>> = vec![Vec::new(); fabric.num_cns()];
    for &(r, iter, arrival) in &recv_instances {
        let mut last_read = arrival;
        for (_, e) in ddg.succ_edges(r) {
            let key = (e.dst, iter + u64::from(e.distance));
            if let Some(&(_, t)) = computed.get(&key) {
                last_read = last_read.max(t);
            }
        }
        let cn = fp.placement[r.index()].index();
        events[cn].push((arrival, 1));
        events[cn].push((last_read + 1, -1));
    }
    let buffer_high_water: Vec<u32> = events
        .into_iter()
        .map(|mut ev| {
            ev.sort_unstable();
            let mut cur = 0i32;
            let mut peak = 0i32;
            for (_, d) in ev {
                cur += d;
                peak = peak.max(cur);
            }
            peak as u32
        })
        .collect();

    Ok(SimOutput {
        stores,
        cycles: passes * ii,
        buffer_high_water,
    })
}

/// Render a human-readable issue trace of the first `passes` kernel passes:
/// one row per (pass, cycle), one column per *active* CN, each cell the op
/// issued there (with its pipeline stage). The tool-side view of §2.2's
/// cyclic program counter walking the kernel.
pub fn render_trace(
    fp: &FinalProgram,
    fabric: &DspFabric,
    kernel: &KernelSchedule,
    passes: u64,
    trip: u64,
) -> String {
    use std::fmt::Write as _;
    // Only CNs that ever issue something get a column.
    let active: Vec<_> = fabric
        .cn_ids()
        .filter(|&cn| (0..kernel.ii).any(|c| kernel.op_at(cn, c).is_some()))
        .collect();
    let mut out = String::new();
    let _ = write!(out, "{:>9} ", "pass.cyc");
    for cn in &active {
        let _ = write!(out, "{:>10}", cn.to_string());
    }
    out.push('\n');
    for pass in 0..passes.min(kernel.total_passes(trip)) {
        for cyc in 0..kernel.ii {
            let _ = write!(out, "{:>6}.{:<2} ", pass, cyc);
            for &cn in &active {
                match kernel.op_at(cn, cyc) {
                    Some(op) if kernel.stage_active(op.stage, pass, trip) => {
                        let mnem = fp.ddg.node(op.node).op.mnemonic();
                        let cell = format!("{}/s{}", mnem, op.stage);
                        let _ = write!(out, "{cell:>10}");
                    }
                    Some(_) => {
                        let _ = write!(out, "{:>10}", "·"); // predicated off
                    }
                    None => {
                        let _ = write!(out, "{:>10}", "");
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// End-to-end check: simulate the clusterised, scheduled kernel and compare
/// every stored value against the sequential reference interpretation of
/// the *source* DDG.
pub fn verify_execution(
    source: &hca_ddg::Ddg,
    fp: &FinalProgram,
    fabric: &DspFabric,
    kernel: &KernelSchedule,
    trip: u64,
) -> Result<SimReport, SimError> {
    let reference = reference_run(source, trip);
    let sim = simulate(fp, fabric, kernel, trip)?;
    if reference.len() != sim.stores.len() {
        return Err(SimError::LogShape {
            expected: reference.len(),
            got: sim.stores.len(),
        });
    }
    for (&(rn, ri, rv), &(sn, si, sv)) in reference.iter().zip(&sim.stores) {
        if rn != sn || ri != si {
            return Err(SimError::LogShape {
                expected: reference.len(),
                got: sim.stores.len(),
            });
        }
        if rv != sv {
            return Err(SimError::Mismatch {
                node: rn,
                iter: ri,
                expected: rv,
                got: sv,
            });
        }
    }
    Ok(SimReport {
        trip,
        cycles: sim.cycles,
        stores_checked: sim.stores.len(),
        ii: kernel.ii,
        utilization: kernel.utilization(),
        max_buffered: sim.buffer_high_water.iter().copied().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::DdgBuilder;
    use hca_sched::modulo_schedule;

    fn pipeline(ddg: &hca_ddg::Ddg, trip: u64) -> Result<SimReport, SimError> {
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(ddg, &fabric, &HcaConfig::default()).unwrap();
        assert!(res.is_legal());
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let k = KernelSchedule::fold(&res.final_program, &fabric, &s);
        verify_execution(ddg, &res.final_program, &fabric, &k, trip)
    }

    #[test]
    fn mac_loop_executes_correctly() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::AddrAdd);
        b.carried(a, a, 1);
        let x = b.op_with(Opcode::Load, &[a]);
        let y = b.op_with(Opcode::Mul, &[x]);
        let acc = b.op_with(Opcode::Mac, &[y]);
        b.carried(acc, acc, 1);
        b.op_with(Opcode::Store, &[acc, a]);
        let ddg = b.finish();
        let rep = pipeline(&ddg, 16).unwrap();
        assert_eq!(rep.stores_checked, 16);
        assert!(rep.cycles >= 16);
    }

    #[test]
    fn parallel_chains_execute_correctly() {
        let mut b = DdgBuilder::default();
        for _ in 0..4 {
            let a = b.node(Opcode::AddrAdd);
            b.carried(a, a, 1);
            let x = b.op_with(Opcode::Load, &[a]);
            let y = b.op_with(Opcode::Shift, &[x]);
            let z = b.op_with(Opcode::Add, &[y, x]);
            b.op_with(Opcode::Store, &[z, a]);
        }
        let ddg = b.finish();
        let rep = pipeline(&ddg, 8).unwrap();
        assert_eq!(rep.stores_checked, 32);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
    }

    #[test]
    fn buffer_high_water_tracks_receives() {
        // A wide kernel guaranteed to cross CNs: some CN must buffer, and
        // the observed peak stays within the machine's buffer regions.
        let mut b = DdgBuilder::default();
        for _ in 0..6 {
            let p = b.node(Opcode::AddrAdd);
            b.carried(p, p, 1);
            let x = b.op_with(Opcode::Load, &[p]);
            let y = b.op_with(Opcode::Mul, &[x]);
            let z = b.op_with(Opcode::Add, &[y, x]);
            b.op_with(Opcode::Store, &[z, p]);
        }
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = hca_core::run_hca(&ddg, &fabric, &hca_core::HcaConfig::default()).unwrap();
        let s = hca_sched::modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let k = KernelSchedule::fold(&res.final_program, &fabric, &s);
        let out = simulate(&res.final_program, &fabric, &k, 8).unwrap();
        let peak: u32 = out.buffer_high_water.iter().copied().max().unwrap_or(0);
        assert_eq!(
            peak > 0,
            res.final_program.num_recvs() > 0,
            "buffers used iff values received"
        );
        assert!(peak <= 32, "{peak}");
    }

    #[test]
    fn trace_renders_prologue_predication() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::AddrAdd);
        b.carried(p, p, 1);
        let x = b.op_with(Opcode::Load, &[p]);
        let y = b.op_with(Opcode::Mul, &[x]);
        b.op_with(Opcode::Store, &[y, p]);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = hca_core::run_hca(&ddg, &fabric, &hca_core::HcaConfig::default()).unwrap();
        let s = hca_sched::modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let k = KernelSchedule::fold(&res.final_program, &fabric, &s);
        let trace = render_trace(&res.final_program, &fabric, &k, 2, 10);
        // Header + 2 passes × II rows.
        assert_eq!(trace.lines().count() as u32, 1 + 2 * k.ii);
        assert!(trace.contains("ld"), "{trace}");
        if k.stages > 1 {
            // Deep stages are predicated off during the first pass.
            assert!(trace.contains('·'), "{trace}");
        }
    }

    #[test]
    fn zero_trip_runs_nothing() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        b.op_with(Opcode::Store, &[x]);
        let ddg = b.finish();
        let rep = pipeline(&ddg, 0).unwrap();
        assert_eq!(rep.stores_checked, 0);
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    fn broken_schedule_detected() {
        // Hand-build a kernel whose consumer issues before its producer's
        // latency elapsed: the simulator must flag it.
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        let y = b.op_with(Opcode::Mul, &[x]); // latency 2… but x is const.
        let z = b.op_with(Opcode::Add, &[y]);
        b.op_with(Opcode::Store, &[z]);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let mut s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        // Corrupt: issue everything at time 0 (same CN slots will differ,
        // but dependences break).
        for t in s.time.iter_mut() {
            *t = 0;
        }
        // Folding may panic on single-issue violations; place nodes on
        // distinct slots instead: everyone at its node index mod ii keeps
        // the fold valid while violating dependences.
        let ii = s.ii.max(4);
        s.ii = ii;
        for (i, t) in s.time.iter_mut().enumerate() {
            *t = (i as u32) % ii;
        }
        s.stages = 1;
        let k = KernelSchedule::fold(&res.final_program, &fabric, &s);
        let out = verify_execution(&ddg, &res.final_program, &fabric, &k, 4);
        assert!(out.is_err(), "corrupted schedule must not verify");
    }
}
