//! Deterministic value semantics and the sequential reference interpreter.
//!
//! The kernels here are *reconstructed* DDGs, so instead of pinning exact
//! arithmetic (which the DDG abstraction has already erased) every opcode
//! evaluates a deterministic **mixing function** of its ordered operand
//! values, salted by opcode. The mix is dataflow-sensitive: change any
//! operand instance — wrong iteration, wrong producer, missing edge — and
//! the result changes with overwhelming probability. Matching the reference
//! interpreter therefore certifies that the clusterised, scheduled execution
//! reproduced the source dataflow exactly. `Recv`/`Route` are transparent
//! (they forward their operand), and `Load` reads a synthetic memory that is
//! itself a deterministic function of the address.

use hca_ddg::{Ddg, NodeId, Opcode};
use rustc_hash::FxHashMap;

/// One recorded store: (store node, iteration, stored value).
pub type StoreLog = Vec<(NodeId, u64, i64)>;

/// splitmix64 — cheap, well-distributed mixing.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Synthetic memory: a pure function of the address.
#[inline]
pub fn memory(addr: i64) -> i64 {
    mix64(addr as u64 ^ 0x4D45_4D4F_5259) as i64
}

/// Initial value of a loop-carried operand read before its producer has run
/// (iteration `i − d < 0`): a function of the producer and the distance —
/// the "live-in" the compiler would have materialised.
#[inline]
pub fn live_in(producer: NodeId, distance: u32) -> i64 {
    mix64((u64::from(producer.0) << 8 | u64::from(distance)) ^ 0x11F1_7E55) as i64
}

/// Evaluate `op` over its ordered operand values.
///
/// `Recv` and `Route` forward their single operand unchanged; `Load`
/// dereferences the synthetic memory at the first operand; constants are a
/// function of nothing (the caller salts with the node id via `const_value`).
pub fn eval(op: Opcode, args: &[i64]) -> i64 {
    match op {
        Opcode::Recv | Opcode::Route => args.first().copied().unwrap_or(0),
        Opcode::Load => memory(args.first().copied().unwrap_or(0)),
        _ => {
            let mut acc = mix64(
                op.mnemonic()
                    .bytes()
                    .fold(0u64, |a, b| a.wrapping_mul(257).wrapping_add(u64::from(b))),
            );
            for (i, &a) in args.iter().enumerate() {
                acc = mix64(acc ^ (a as u64).rotate_left(i as u32 + 1));
            }
            acc as i64
        }
    }
}

/// Value of a `Const` node (deterministic per node).
#[inline]
pub fn const_value(n: NodeId) -> i64 {
    mix64(u64::from(n.0) ^ 0xC0_4574) as i64
}

/// Sequential reference interpretation of `ddg` for `trip` iterations,
/// returning the log of all stored values in (iteration, store-id) order.
///
/// Stores record the mix of their operands (a pure observer of the values
/// that reach memory).
pub fn reference_run(ddg: &Ddg, trip: u64) -> StoreLog {
    let topo = hca_ddg::analysis::intra_topo_order(ddg).expect("schedulable DDG");
    // history[n] = values of n for all past iterations (indexed by iter).
    let mut history: Vec<Vec<i64>> = vec![Vec::new(); ddg.num_nodes()];
    let mut log = StoreLog::new();
    for iter in 0..trip {
        let mut current: FxHashMap<NodeId, i64> = FxHashMap::default();
        for &n in &topo {
            let node = ddg.node(n);
            let mut args = Vec::new();
            for (_, e) in ddg.pred_edges(n) {
                let v = if e.distance == 0 {
                    current[&e.src]
                } else if iter >= u64::from(e.distance) {
                    history[e.src.index()][(iter - u64::from(e.distance)) as usize]
                } else {
                    live_in(e.src, e.distance)
                };
                args.push(v);
            }
            let v = match node.op {
                Opcode::Const => const_value(n),
                op => eval(op, &args),
            };
            current.insert(n, v);
            if node.op == Opcode::Store {
                log.push((n, iter, v));
            }
        }
        for (n, v) in current {
            debug_assert_eq!(history[n.index()].len(), iter as usize);
            history[n.index()].push(v);
        }
    }
    log.sort_unstable();
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::DdgBuilder;

    #[test]
    fn eval_is_deterministic_and_operand_sensitive() {
        let a = eval(Opcode::Add, &[1, 2]);
        assert_eq!(a, eval(Opcode::Add, &[1, 2]));
        assert_ne!(a, eval(Opcode::Add, &[2, 1]), "order matters");
        assert_ne!(a, eval(Opcode::Add, &[1, 3]));
        assert_ne!(a, eval(Opcode::Sub, &[1, 2]), "opcode matters");
    }

    #[test]
    fn recv_and_route_are_transparent() {
        assert_eq!(eval(Opcode::Recv, &[42]), 42);
        assert_eq!(eval(Opcode::Route, &[-7]), -7);
    }

    #[test]
    fn memory_is_pure() {
        assert_eq!(memory(100), memory(100));
        assert_ne!(memory(100), memory(101));
        assert_eq!(eval(Opcode::Load, &[100]), memory(100));
    }

    #[test]
    fn reference_handles_recurrences() {
        // acc = mac(acc@1, x): iteration i depends on i−1.
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        let acc = b.node(Opcode::Mac);
        b.flow(x, acc);
        b.carried(acc, acc, 1);
        let st = b.op_with(Opcode::Store, &[acc]);
        let ddg = b.finish();
        let log = reference_run(&ddg, 3);
        assert_eq!(log.len(), 3);
        // All three stored values distinct (the accumulator evolves).
        assert_ne!(log[0].2, log[1].2);
        assert_ne!(log[1].2, log[2].2);
        assert_eq!(log[0].0, st);
    }

    #[test]
    fn zero_trip_is_empty() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        b.op_with(Opcode::Store, &[x]);
        let ddg = b.finish();
        assert!(reference_run(&ddg, 0).is_empty());
    }
}
