//! Rau's iterative modulo scheduling (MICRO '94), operating on the
//! clusterised final DDG: every node already sits on its CN, so the
//! scheduler only chooses *times*, subject to the per-CN single-issue
//! modulo reservation and the shared DMA ports.

use crate::mrt::Mrt;
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::{analysis, NodeId};
use std::fmt;

/// A complete modulo schedule.
#[derive(Clone, Debug)]
pub struct ModuloSchedule {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Issue time per final-DDG node.
    pub time: Vec<u32>,
    /// Number of kernel stages: `max(time)/ii + 1`.
    pub stages: u32,
}

impl ModuloSchedule {
    /// Pipeline stage of a node.
    #[inline]
    pub fn stage(&self, n: NodeId) -> u32 {
        self.time[n.index()] / self.ii
    }

    /// Kernel slot (cycle within the II window) of a node.
    #[inline]
    pub fn slot(&self, n: NodeId) -> u32 {
        self.time[n.index()] % self.ii
    }
}

/// Why scheduling failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// No II up to the given bound admitted a schedule within budget.
    Infeasible {
        /// Largest II attempted.
        tried_up_to: u32,
    },
    /// The final DDG itself is unschedulable (zero-distance cycle).
    BadGraph,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Infeasible { tried_up_to } => {
                write!(f, "no modulo schedule found up to II = {tried_up_to}")
            }
            SchedError::BadGraph => write!(f, "final DDG has a zero-distance cycle"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Schedule `fp` at the smallest feasible II ≥ `min_ii`.
///
/// `min_ii` should be the §4.2 lower bound (`MiiReport::final_mii`); the
/// scheduler retries at II+1 on failure up to `4·min_ii + 16`.
pub fn modulo_schedule(
    fp: &FinalProgram,
    fabric: &DspFabric,
    min_ii: u32,
) -> Result<ModuloSchedule, SchedError> {
    let mii_rec = analysis::mii_rec(&fp.ddg).map_err(|_| SchedError::BadGraph)?;
    let start = min_ii.max(mii_rec).max(1);
    let max_ii = 4 * start + 16;
    for ii in start..=max_ii {
        if let Some(s) = try_schedule(fp, fabric, ii) {
            return Ok(s);
        }
    }
    Err(SchedError::Infeasible {
        tried_up_to: max_ii,
    })
}

/// One attempt at a fixed II, with a scheduling-operation budget.
fn try_schedule(fp: &FinalProgram, fabric: &DspFabric, ii: u32) -> Option<ModuloSchedule> {
    let ddg = &fp.ddg;
    let n = ddg.num_nodes();
    if n == 0 {
        return Some(ModuloSchedule {
            ii,
            time: Vec::new(),
            stages: 1,
        });
    }
    // Height-based priority over the intra-iteration DAG.
    let topo = analysis::intra_topo_order(ddg)?;
    let levels = analysis::asap_alap(ddg, &topo);

    let mut time: Vec<Option<u32>> = vec![None; n];
    let mut last_time: Vec<u32> = vec![0; n];
    let mut mrt = Mrt::new(fabric, ii);
    // Worklist ordered by (height desc, id) — recomputed lazily via sort.
    let mut worklist: Vec<NodeId> = ddg.node_ids().collect();
    worklist.sort_by_key(|&x| (u32::MAX - levels.height[x.index()], x.0));
    let mut budget = 16 * n as u64 + 64;

    while let Some(node) = pick_next(&worklist, &time, &levels) {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        let cn = fp.placement[node.index()];
        let op = ddg.node(node).op;

        // Earliest start from *scheduled* predecessors (modulo semantics).
        let mut estart = 0i64;
        for (_, e) in ddg.pred_edges(node) {
            if let Some(tp) = time[e.src.index()] {
                let lo =
                    i64::from(tp) + i64::from(e.latency) - i64::from(ii) * i64::from(e.distance);
                estart = estart.max(lo);
            }
        }
        let estart = u32::try_from(estart.max(0)).ok()?;

        // Search one full II window for a free slot.
        let mut chosen = None;
        for t in estart..estart + ii {
            if mrt.is_free(cn, op, t) {
                chosen = Some(t);
                break;
            }
        }
        // Forced placement (Rau): at least estart, and strictly after the
        // node's previous slot so repeated ejections make progress.
        let t = chosen.unwrap_or_else(|| estart.max(last_time[node.index()] + 1));
        // Evict the resource conflict, if any.
        if let Some(evicted) = mrt.occupant(cn, t) {
            if evicted != node {
                let et = time[evicted.index()].expect("occupants are scheduled");
                mrt.remove(
                    evicted,
                    fp.placement[evicted.index()],
                    ddg.node(evicted).op,
                    et,
                );
                time[evicted.index()] = None;
                last_time[evicted.index()] = et;
            }
        }
        // DMA-port conflicts cannot be attributed to one occupant; bump time.
        if !mrt.is_free(cn, op, t) {
            last_time[node.index()] = t;
            continue; // retry this node next round, one cycle later
        }
        mrt.place(node, cn, op, t);
        time[node.index()] = Some(t);
        last_time[node.index()] = t;

        // Eject successors whose dependence the new time violates.
        for (_, e) in ddg.succ_edges(node) {
            if e.dst == node {
                continue;
            }
            if let Some(ts) = time[e.dst.index()] {
                let lo =
                    i64::from(t) + i64::from(e.latency) - i64::from(ii) * i64::from(e.distance);
                if i64::from(ts) < lo {
                    mrt.remove(e.dst, fp.placement[e.dst.index()], ddg.node(e.dst).op, ts);
                    time[e.dst.index()] = None;
                    last_time[e.dst.index()] = ts;
                }
            }
        }
    }

    let time: Vec<u32> = time
        .into_iter()
        .map(|t| t.expect("all scheduled"))
        .collect();
    let stages = time.iter().map(|&t| t / ii).max().unwrap_or(0) + 1;
    let sched = ModuloSchedule { ii, time, stages };
    debug_assert!(validate(fp, fabric, &sched).is_ok());
    Some(sched)
}

/// Next unscheduled node by (height, id) priority.
fn pick_next(
    worklist: &[NodeId],
    time: &[Option<u32>],
    _levels: &hca_ddg::AsapAlap,
) -> Option<NodeId> {
    worklist.iter().copied().find(|x| time[x.index()].is_none())
}

/// Check every dependence and resource constraint of a finished schedule.
pub fn validate(fp: &FinalProgram, fabric: &DspFabric, s: &ModuloSchedule) -> Result<(), String> {
    let ddg = &fp.ddg;
    if s.time.len() != ddg.num_nodes() {
        return Err("schedule length mismatch".into());
    }
    for e in ddg.edges() {
        let lhs = i64::from(s.time[e.dst.index()]);
        let rhs = i64::from(s.time[e.src.index()]) + i64::from(e.latency)
            - i64::from(s.ii) * i64::from(e.distance);
        if lhs < rhs {
            return Err(format!(
                "dependence {:?}->{:?} violated: {lhs} < {rhs}",
                e.src, e.dst
            ));
        }
    }
    let mut mrt = Mrt::new(fabric, s.ii);
    for x in ddg.node_ids() {
        let cn = fp.placement[x.index()];
        let op = ddg.node(x).op;
        if !mrt.is_free(cn, op, s.time[x.index()]) {
            return Err(format!("resource conflict at {x:?} on {cn}"));
        }
        mrt.place(x, cn, op, s.time[x.index()]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::{DdgBuilder, Opcode};

    fn schedule_kernel(ddg: &hca_ddg::Ddg) -> (FinalProgram, ModuloSchedule, DspFabric) {
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        (res.final_program, s, fabric)
    }

    #[test]
    fn schedules_simple_mac_loop() {
        let mut b = DdgBuilder::default();
        let addr = b.node(Opcode::AddrAdd);
        b.carried(addr, addr, 1);
        let ld = b.op_with(Opcode::Load, &[addr]);
        let acc = b.op_with(Opcode::Mac, &[ld]);
        b.carried(acc, acc, 1);
        b.op_with(Opcode::Store, &[acc, addr]);
        let ddg = b.finish();
        let (fp, s, fabric) = schedule_kernel(&ddg);
        assert!(validate(&fp, &fabric, &s).is_ok());
        // Mac self-recurrence at latency 2 pins II ≥ 2.
        assert!(s.ii >= 2);
        assert!(s.stages >= 1);
    }

    #[test]
    fn achieved_ii_close_to_lower_bound() {
        let mut b = DdgBuilder::default();
        for _ in 0..3 {
            let a = b.node(Opcode::AddrAdd);
            b.carried(a, a, 1);
            let x = b.op_with(Opcode::Load, &[a]);
            let y = b.op_with(Opcode::Mul, &[x]);
            let z = b.op_with(Opcode::Add, &[y]);
            b.op_with(Opcode::Store, &[z, a]);
        }
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        assert!(
            s.ii <= res.mii.final_mii + 2,
            "achieved {} vs bound {}",
            s.ii,
            res.mii.final_mii
        );
    }

    #[test]
    fn validate_rejects_bad_schedule() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let y = b.op_with(Opcode::Add, &[x]);
        let _ = y;
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let mut s = modulo_schedule(&res.final_program, &fabric, 1).unwrap();
        // Corrupt: schedule the consumer before its producer.
        for t in s.time.iter_mut() {
            *t = 0;
        }
        assert!(validate(&res.final_program, &fabric, &s).is_err());
    }

    #[test]
    fn empty_program_schedules() {
        let ddg = hca_ddg::Ddg::new();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, 1).unwrap();
        assert_eq!(s.stages, 1);
    }
}
