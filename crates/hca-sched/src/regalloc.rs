//! Rotating-register pressure estimation.
//!
//! DSPFabric CNs provide rotating registers precisely so modulo-scheduled
//! lifetimes that span iterations get a fresh register per iteration
//! (§2.2). The classical pressure estimate is **MaxLive**: a value born at
//! `t_def` and last used at `t_use` occupies `ceil((t_use − t_def) / II)`
//! rotating registers (plus the live copy); summing per producing CN gives
//! the per-CN register demand the paper lists as the next cost factor to
//! model (§5/§7).

use crate::modsched::ModuloSchedule;
use hca_arch::DspFabric;
use hca_core::FinalProgram;

/// Per-CN rotating-register demand for a schedule.
pub fn register_pressure(fp: &FinalProgram, fabric: &DspFabric, s: &ModuloSchedule) -> Vec<u32> {
    let mut pressure = vec![0u32; fabric.num_cns()];
    for n in fp.ddg.node_ids() {
        let t_def = i64::from(s.time[n.index()]);
        // Lifetime ends at the latest consumer, adjusted by iteration
        // distance (a distance-d consumer reads the value d iterations
        // later, i.e. d·II cycles later in absolute time).
        let mut t_end = t_def;
        for (_, e) in fp.ddg.succ_edges(n) {
            let use_t = i64::from(s.time[e.dst.index()]) + i64::from(s.ii) * i64::from(e.distance);
            t_end = t_end.max(use_t);
        }
        if t_end > t_def {
            let life = (t_end - t_def) as u32;
            pressure[fp.placement[n.index()].index()] += life.div_ceil(s.ii).max(1);
        }
    }
    pressure
}

/// Worst per-CN pressure — compare against the register-file size when
/// deciding whether a schedule is realisable.
pub fn max_pressure(pressure: &[u32]) -> u32 {
    pressure.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::modulo_schedule;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::{DdgBuilder, Opcode};

    #[test]
    fn pressure_counts_lifetimes() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::AddrAdd);
        b.carried(a, a, 1);
        let x = b.op_with(Opcode::Load, &[a]); // 8-cycle latency: long life
        let y = b.op_with(Opcode::Mul, &[x]);
        b.op_with(Opcode::Store, &[y, a]);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let p = register_pressure(&res.final_program, &fabric, &s);
        assert_eq!(p.len(), 64);
        // The load's value lives ≥ its latency: somebody needs registers.
        assert!(max_pressure(&p) >= 1);
        // Total registers bounded by something sane.
        let total: u32 = p.iter().sum();
        assert!(total < 64, "{total}");
    }

    #[test]
    fn dead_values_cost_nothing() {
        let mut b = DdgBuilder::default();
        b.node(Opcode::Const);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, 1).unwrap();
        let p = register_pressure(&res.final_program, &fabric, &s);
        assert_eq!(max_pressure(&p), 0);
    }
}
