//! The Modulo Reservation Table.
//!
//! At initiation interval `II`, an operation issued at time `t` occupies its
//! resources in every iteration at slot `t mod II`. The DSPFabric resources
//! tracked here: each CN's single issue slot, and the DMA's shared request
//! ports (only `Load`/`Store` consume one).

use hca_arch::{CnId, DspFabric};
use hca_ddg::{NodeId, Opcode};

/// Reservation state for one candidate II.
#[derive(Clone, Debug)]
pub struct Mrt {
    ii: u32,
    /// `slots[cn][t mod ii]` — the op issued there, if any (single-issue CNs).
    slots: Vec<Vec<Option<NodeId>>>,
    /// Memory requests per `t mod ii` (bounded by the DMA port count).
    dma: Vec<u32>,
    dma_ports: u32,
}

impl Mrt {
    /// Empty table for `fabric` at interval `ii`.
    pub fn new(fabric: &DspFabric, ii: u32) -> Self {
        assert!(ii > 0);
        Mrt {
            ii,
            slots: vec![vec![None; ii as usize]; fabric.num_cns()],
            dma: vec![0; ii as usize],
            dma_ports: fabric.dma.ports,
        }
    }

    /// The interval this table is built for.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Can `op` issue on `cn` at time `t`?
    pub fn is_free(&self, cn: CnId, op: Opcode, t: u32) -> bool {
        let slot = (t % self.ii) as usize;
        if self.slots[cn.index()][slot].is_some() {
            return false;
        }
        if op.is_memory() && self.dma[slot] >= self.dma_ports {
            return false;
        }
        true
    }

    /// Reserve the slot; returns the op it displaced on the CN (if the
    /// caller is force-placing).
    pub fn place(&mut self, n: NodeId, cn: CnId, op: Opcode, t: u32) -> Option<NodeId> {
        let slot = (t % self.ii) as usize;
        let evicted = self.slots[cn.index()][slot].replace(n);
        if op.is_memory() {
            self.dma[slot] += 1;
        }
        evicted
    }

    /// Release a previously placed op.
    pub fn remove(&mut self, n: NodeId, cn: CnId, op: Opcode, t: u32) {
        let slot = (t % self.ii) as usize;
        debug_assert_eq!(self.slots[cn.index()][slot], Some(n));
        self.slots[cn.index()][slot] = None;
        if op.is_memory() {
            debug_assert!(self.dma[slot] > 0);
            self.dma[slot] -= 1;
        }
    }

    /// Occupant of a CN slot.
    pub fn occupant(&self, cn: CnId, t: u32) -> Option<NodeId> {
        self.slots[cn.index()][(t % self.ii) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_issue_conflicts_are_modular() {
        let f = DspFabric::standard(8, 8, 8);
        let mut mrt = Mrt::new(&f, 3);
        let cn = CnId(5);
        assert!(mrt.is_free(cn, Opcode::Add, 1));
        assert_eq!(mrt.place(NodeId(0), cn, Opcode::Add, 1), None);
        assert!(!mrt.is_free(cn, Opcode::Mul, 4)); // 4 ≡ 1 (mod 3)
        assert!(mrt.is_free(cn, Opcode::Mul, 5));
        assert_eq!(mrt.occupant(cn, 7), Some(NodeId(0)));
        mrt.remove(NodeId(0), cn, Opcode::Add, 1);
        assert!(mrt.is_free(cn, Opcode::Mul, 4));
    }

    #[test]
    fn dma_ports_shared_across_cns() {
        let mut fabric = DspFabric::standard(8, 8, 8);
        fabric.dma.ports = 2;
        let mut mrt = Mrt::new(&fabric, 1); // everything lands in slot 0
        mrt.place(NodeId(0), CnId(0), Opcode::Load, 0);
        mrt.place(NodeId(1), CnId(1), Opcode::Load, 0);
        // Two ports used: a third load anywhere is rejected…
        assert!(!mrt.is_free(CnId(2), Opcode::Load, 0));
        // …but ALU work is fine.
        assert!(mrt.is_free(CnId(2), Opcode::Add, 0));
        mrt.remove(NodeId(1), CnId(1), Opcode::Load, 0);
        assert!(mrt.is_free(CnId(2), Opcode::Store, 0));
    }

    #[test]
    fn force_place_reports_eviction() {
        let f = DspFabric::standard(8, 8, 8);
        let mut mrt = Mrt::new(&f, 2);
        mrt.place(NodeId(3), CnId(0), Opcode::Add, 0);
        let evicted = mrt.place(NodeId(4), CnId(0), Opcode::Add, 2);
        assert_eq!(evicted, Some(NodeId(3)));
    }
}
