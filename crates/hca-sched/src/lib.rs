//! # hca-sched — iterative modulo scheduling on the clusterised DDG
//!
//! The paper stops after cluster assignment and leaves "the modulo
//! scheduling phase, the register allocation and the DMA programming" as
//! future work (§5/§7); the architecture is explicitly built for
//! Kernel-Only Modulo Scheduled loops (Rau & Schlansker's KOMS schema,
//! §2.2). This crate implements that declared next phase so the final-MII
//! numbers of the evaluation can be *executed*, not just computed:
//!
//! * [`mrt`] — the Modulo Reservation Table: per-CN single-issue slots plus
//!   the shared DMA request ports, all modulo II;
//! * [`modsched`] — Rau's iterative modulo scheduling (MICRO '94):
//!   height-based priority, earliest-start from scheduled predecessors,
//!   slot search within one II window, forced placement with ejection and
//!   a bounded operation budget, retried at increasing II;
//! * [`kernel_only`] — the KOMS view of a schedule: stage decomposition and
//!   the per-(CN, cycle) kernel slot table consumed by the simulator;
//! * [`regalloc`] — rotating-register pressure estimation (MaxLive per CN);
//! * [`rotating`] — an actual rotating-register *allocation* (modulo
//!   lifetime interval colouring) validated against the register-file size;
//! * [`sms`] — Swing Modulo Scheduling (Llosa '96), the classical
//!   register-pressure-aware alternative, drop-in comparable with the
//!   iterative scheduler;
//! * [`dma_prog`] — DMA programming: per-stream descriptors, per-cycle
//!   request budgeting and FIFO-depth analysis (§5's last future-work
//!   item).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffers;
pub mod dma_prog;
pub mod kernel_only;
pub mod modsched;
pub mod mrt;
pub mod regalloc;
pub mod rotating;
pub mod sms;

pub use buffers::{buffers_fit, input_buffer_pressure};
pub use dma_prog::{derive_dma_program, DmaProgram, StreamDescriptor, StreamDir};
pub use kernel_only::KernelSchedule;
pub use modsched::{modulo_schedule, ModuloSchedule, SchedError};
pub use mrt::Mrt;
pub use regalloc::register_pressure;
pub use rotating::{allocate_rotating, RotatingAllocation};
pub use sms::swing_schedule;
