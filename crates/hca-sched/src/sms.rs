//! Swing Modulo Scheduling (Llosa et al., PACT '96) — the classical
//! low-register-pressure alternative to Rau's iterative scheme.
//!
//! SMS orders operations so that each is scheduled adjacent to already
//! scheduled neighbours (walking recurrences first, "swinging" between
//! predecessors and successors), then places every op exactly once — as
//! *late* as possible below scheduled successors, as *early* as possible
//! above scheduled predecessors — shrinking value lifetimes. No ejection:
//! if a window has no free slot, the attempt fails and II increases.
//!
//! We reuse the same [`Mrt`] and produce the same [`ModuloSchedule`] type
//! as the iterative scheduler, so the two are drop-in comparable (see the
//! `ablation` bench and `EXPERIMENTS.md` E1b).

use crate::modsched::ModuloSchedule;
use crate::mrt::Mrt;
use crate::SchedError;
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::{analysis, NodeId};
use rustc_hash::FxHashSet;

/// Diagnostics observer for SMS: the process-global one when installed,
/// otherwise a throwaway stderr logger when the legacy `SMS_TRACE`
/// environment switch is set, otherwise disabled (free).
fn sms_obs() -> hca_obs::Obs {
    let global = hca_obs::global();
    if global.is_enabled() {
        global
    } else if std::env::var_os("SMS_TRACE").is_some() {
        hca_obs::Obs::stderr_logger()
    } else {
        hca_obs::Obs::disabled()
    }
}

/// Schedule `fp` with SMS at the smallest feasible II ≥ `min_ii`.
pub fn swing_schedule(
    fp: &FinalProgram,
    fabric: &DspFabric,
    min_ii: u32,
) -> Result<ModuloSchedule, SchedError> {
    let mii_rec = analysis::mii_rec(&fp.ddg).map_err(|_| SchedError::BadGraph)?;
    let start = min_ii.max(mii_rec).max(1);
    let max_ii = 4 * start + 16;
    // Primary: the Llosa swing ordering. Fallback: plain intra-iteration
    // topological order — with it every node is placed below its scheduled
    // predecessors only, so a large enough II always admits a schedule
    // (distance-0 "sandwiches" cannot occur); lifetimes are worse, which is
    // why it is only the safety net.
    let swing = sms_order(fp);
    let topo = analysis::intra_topo_order(&fp.ddg).ok_or(SchedError::BadGraph)?;
    for order in [&swing, &topo] {
        for ii in start..=max_ii {
            if let Some(s) = try_swing(fp, fabric, order, ii) {
                return Ok(s);
            }
        }
    }
    Err(SchedError::Infeasible {
        tried_up_to: max_ii,
    })
}

/// The SMS node ordering: SCCs first by decreasing recurrence criticality,
/// then the remaining nodes, each group arranged so every node (after the
/// first) has a neighbour among its predecessors in the order.
fn sms_order(fp: &FinalProgram) -> Vec<NodeId> {
    let ddg = &fp.ddg;
    let n = ddg.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let (scc, num_sccs) = analysis::tarjan_scc(ddg);
    // SCC weight: total internal latency (a proxy for criticality).
    let mut weight = vec![0u64; num_sccs as usize];
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_sccs as usize];
    for v in ddg.node_ids() {
        members[scc[v.index()] as usize].push(v);
    }
    for e in ddg.edges() {
        if scc[e.src.index()] == scc[e.dst.index()] {
            weight[scc[e.src.index()] as usize] += u64::from(e.latency);
        }
    }
    let mut scc_order: Vec<u32> = (0..num_sccs).collect();
    scc_order.sort_by_key(|&s| {
        (
            u64::MAX - weight[s as usize],
            members[s as usize].first().map_or(0, |m| m.0),
        )
    });

    // Llosa's bidirectional ordering: process SCC groups by criticality;
    // within the whole graph alternate *top-down* sweeps (append nodes
    // whose predecessors are ordered, most critical — highest height —
    // first) and *bottom-up* sweeps (append nodes whose successors are
    // ordered, deepest first). The alternation guarantees each node is
    // placed with ordered neighbours on one side only, except where a
    // recurrence closes — whose slack grows with II.
    let topo = analysis::intra_topo_order(ddg).unwrap_or_else(|| ddg.node_ids().collect());
    let levels = analysis::asap_alap(ddg, &topo);
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut placed: FxHashSet<NodeId> = FxHashSet::default();
    for &s in &scc_order {
        // Llosa's grouping: the SCC plus every node on a dataflow path
        // between it and the already-ordered set — otherwise those path
        // nodes get ordered after *both* endpoints and land in empty
        // distance-0 windows ("sandwiches") no II can widen.
        let seed_set: FxHashSet<NodeId> = members[s as usize].iter().copied().collect();
        let between = {
            let fwd_pre = reach(ddg, &placed, false);
            let bwd_pre = reach(ddg, &placed, true);
            let fwd_s = reach(ddg, &seed_set, false);
            let bwd_s = reach(ddg, &seed_set, true);
            ddg.node_ids()
                .filter(|v| {
                    (fwd_pre.contains(v) && bwd_s.contains(v))
                        || (fwd_s.contains(v) && bwd_pre.contains(v))
                })
                .collect::<FxHashSet<NodeId>>()
        };
        let mut remaining: FxHashSet<NodeId> = seed_set
            .iter()
            .chain(between.iter())
            .copied()
            .filter(|v| !placed.contains(v))
            .collect();
        let mut top_down = true;
        while !remaining.is_empty() {
            let frontier: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|&v| {
                    if top_down {
                        ddg.pred_edges(v).any(|(_, e)| placed.contains(&e.src))
                    } else {
                        ddg.succ_edges(v).any(|(_, e)| placed.contains(&e.dst))
                    }
                })
                .collect();
            let next = if let Some(&best) = frontier.iter().max_by_key(|&&v| {
                let key = if top_down {
                    levels.height[v.index()]
                } else {
                    levels.asap[v.index()]
                };
                (key, u32::MAX - v.0)
            }) {
                best
            } else if order.is_empty() || placed.len() == order.len() {
                // Seed: the most critical node of the group.
                let seed = remaining
                    .iter()
                    .copied()
                    .max_by_key(|&v| (levels.height[v.index()], u32::MAX - v.0))
                    .expect("remaining non-empty");
                seed
            } else {
                // Dead frontier: flip direction; if both directions are dry
                // the node set is disconnected from the order — seed anew.
                top_down = !top_down;
                let flipped: Vec<NodeId> = remaining
                    .iter()
                    .copied()
                    .filter(|&v| {
                        if top_down {
                            ddg.pred_edges(v).any(|(_, e)| placed.contains(&e.src))
                        } else {
                            ddg.succ_edges(v).any(|(_, e)| placed.contains(&e.dst))
                        }
                    })
                    .collect();
                match flipped.iter().max_by_key(|&&v| {
                    let key = if top_down {
                        levels.height[v.index()]
                    } else {
                        levels.asap[v.index()]
                    };
                    (key, u32::MAX - v.0)
                }) {
                    Some(&best) => best,
                    None => remaining
                        .iter()
                        .copied()
                        .max_by_key(|&v| (levels.height[v.index()], u32::MAX - v.0))
                        .expect("remaining non-empty"),
                }
            };
            order.push(next);
            placed.insert(next);
            remaining.remove(&next);
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Forward (or reverse) reachability from a seed set, seeds included.
fn reach(ddg: &hca_ddg::Ddg, seeds: &FxHashSet<NodeId>, reverse: bool) -> FxHashSet<NodeId> {
    let mut seen: FxHashSet<NodeId> = seeds.clone();
    let mut stack: Vec<NodeId> = seeds.iter().copied().collect();
    while let Some(v) = stack.pop() {
        let nexts: Vec<NodeId> = if reverse {
            ddg.pred_edges(v).map(|(_, e)| e.src).collect()
        } else {
            ddg.succ_edges(v).map(|(_, e)| e.dst).collect()
        };
        for x in nexts {
            if seen.insert(x) {
                stack.push(x);
            }
        }
    }
    seen
}

/// One SMS attempt at a fixed II.
fn try_swing(
    fp: &FinalProgram,
    fabric: &DspFabric,
    order: &[NodeId],
    ii: u32,
) -> Option<ModuloSchedule> {
    let ddg = &fp.ddg;
    let topo = analysis::intra_topo_order(ddg)?;
    let levels = analysis::asap_alap(ddg, &topo);
    let mut time: Vec<Option<i64>> = vec![None; ddg.num_nodes()];
    let mut mrt = Mrt::new(fabric, ii);

    for &v in order {
        let cn = fp.placement[v.index()];
        let op = ddg.node(v).op;
        // Bounds from scheduled neighbours.
        let mut early: Option<i64> = None;
        for (_, e) in ddg.pred_edges(v) {
            if let Some(tp) = time[e.src.index()] {
                let lo = tp + i64::from(e.latency) - i64::from(ii) * i64::from(e.distance);
                early = Some(early.map_or(lo, |x: i64| x.max(lo)));
            }
        }
        let mut late: Option<i64> = None;
        for (_, e) in ddg.succ_edges(v) {
            if e.dst == v {
                continue;
            }
            if let Some(ts) = time[e.dst.index()] {
                let hi = ts - i64::from(e.latency) + i64::from(ii) * i64::from(e.distance);
                late = Some(late.map_or(hi, |x: i64| x.min(hi)));
            }
        }
        // SMS direction rules: both bounds → walk down from early, capped by
        // late; only successors → walk *up* from late (as late as legal);
        // otherwise walk down from early (or 0).
        let candidates: Vec<i64> = match (early, late) {
            (Some(lo), Some(hi)) => {
                if lo > hi {
                    sms_obs().log("sched", "sms_window", || {
                        format!("II {ii}: empty window for {v:?} [{lo}, {hi}]")
                    });
                    return None; // the window is empty at this II
                }
                (lo..=hi.min(lo + i64::from(ii) - 1)).collect()
            }
            (Some(lo), None) => (lo..lo + i64::from(ii)).collect(),
            (None, Some(hi)) => {
                let lo = (hi - i64::from(ii) + 1).max(0);
                (lo..=hi.max(lo)).rev().collect()
            }
            (None, None) => {
                // Unconstrained (the first node of its region): anchor at
                // the node's ASAP level so predecessors ordered later still
                // find room above it.
                let lo = i64::from(levels.asap[v.index()]);
                (lo..lo + i64::from(ii)).collect()
            }
        };
        let Some(slot) = candidates
            .into_iter()
            .filter(|&t| t >= 0)
            .find(|&t| mrt.is_free(cn, op, t as u32))
        else {
            sms_obs().log("sched", "sms_slot", || {
                format!("II {ii}: no free slot for {v:?} (early {early:?} late {late:?})")
            });
            return None;
        };
        mrt.place(v, cn, op, slot as u32);
        time[v.index()] = Some(slot);
    }

    // Normalise: shift so the earliest time is ≥ 0 (it already is), then
    // convert.
    let time: Vec<u32> = time
        .into_iter()
        .map(|t| u32::try_from(t.expect("all placed")).expect("non-negative"))
        .collect();
    let stages = time.iter().map(|&t| t / ii).max().unwrap_or(0) + 1;
    let sched = ModuloSchedule { ii, time, stages };
    if let Err(e) = crate::modsched::validate(fp, fabric, &sched) {
        sms_obs().log("sched", "sms_validate", || {
            format!("II {ii}: validation failed: {e}")
        });
        return None;
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::{modulo_schedule, validate};
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::{DdgBuilder, Opcode};

    fn prepared(ddg: &hca_ddg::Ddg) -> (FinalProgram, DspFabric, u32) {
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(ddg, &fabric, &HcaConfig::default()).unwrap();
        let bound = res.mii.final_mii;
        (res.final_program, fabric, bound)
    }

    #[test]
    fn sms_schedules_a_recurrence_loop() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::AddrAdd);
        b.carried(a, a, 1);
        let x = b.op_with(Opcode::Load, &[a]);
        let acc = b.op_with(Opcode::Mac, &[x]);
        b.carried(acc, acc, 1);
        b.op_with(Opcode::Store, &[acc, a]);
        let ddg = b.finish();
        let (fp, fabric, bound) = prepared(&ddg);
        let s = swing_schedule(&fp, &fabric, bound).unwrap();
        assert!(validate(&fp, &fabric, &s).is_ok());
        assert!(s.ii >= bound);
    }

    #[test]
    fn sms_and_ims_agree_on_feasibility() {
        for kernel in [
            hca_kernels::fir2dim::build().ddg,
            hca_kernels::mpeg2::build().ddg,
        ] {
            let (fp, fabric, bound) = prepared(&kernel);
            let ims = modulo_schedule(&fp, &fabric, bound).unwrap();
            let sms = swing_schedule(&fp, &fabric, bound).unwrap();
            assert!(validate(&fp, &fabric, &sms).is_ok());
            // SMS is allowed a slightly larger II (no ejection) but must be
            // in the same ballpark.
            assert!(
                sms.ii <= 2 * ims.ii + 4,
                "SMS II {} vs IMS II {}",
                sms.ii,
                ims.ii
            );
        }
    }

    #[test]
    fn sms_order_visits_every_node_once() {
        let kernel = hca_kernels::idct::build();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default()).unwrap();
        let order = sms_order(&res.final_program);
        assert_eq!(order.len(), res.final_program.ddg.num_nodes());
        let set: FxHashSet<NodeId> = order.iter().copied().collect();
        assert_eq!(set.len(), order.len());
    }
}
