//! Rotating-register allocation.
//!
//! DSPFabric CNs expose rotating register files (§2.2): a value defined in
//! iteration `i` and still live when iteration `i+k` defines the same
//! virtual register is kept alive because the physical register index
//! rotates every II cycles. Allocation therefore colours *modulo lifetime
//! intervals*: a value born at `t_def` and dead at `t_end` occupies
//! `len = t_end − t_def` cycles; on a rotating file, two values of one CN
//! may share a base register iff their intervals do not overlap modulo
//! `R · II`, where `R` is the rotation depth the allocator assigns.
//!
//! The implementation uses the standard simplification (Rau et al.,
//! "Register allocation for software pipelined loops"): sort values by
//! start time and greedily assign the lowest base register whose previous
//! occupant is already dead — the "best-fit wands" linear scan adapted to
//! modulo time. The result is checked against the per-CN register-file
//! capacity.

use crate::modsched::ModuloSchedule;
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::NodeId;

/// One allocated value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueSlot {
    /// Producing node (the value's identity).
    pub value: NodeId,
    /// Base rotating register on the producing CN.
    pub base_register: u32,
    /// Rotation depth: how many consecutive physical registers the value's
    /// instances occupy (`ceil(lifetime / II)`, at least 1).
    pub depth: u32,
}

/// A complete rotating allocation.
#[derive(Clone, Debug)]
pub struct RotatingAllocation {
    /// Per-CN allocated values.
    pub per_cn: Vec<Vec<ValueSlot>>,
    /// Physical registers used per CN (base + depth high-water mark).
    pub registers_used: Vec<u32>,
}

impl RotatingAllocation {
    /// Worst per-CN register usage.
    pub fn max_registers(&self) -> u32 {
        self.registers_used.iter().copied().max().unwrap_or(0)
    }

    /// Does the allocation fit a register file of `capacity` per CN?
    pub fn fits(&self, capacity: u32) -> bool {
        self.registers_used.iter().all(|&r| r <= capacity)
    }
}

/// Lifetime of a value under a schedule: from issue to the last
/// (distance-adjusted) use. `None` when the value has no consumers.
fn lifetime(fp: &FinalProgram, s: &ModuloSchedule, n: NodeId) -> Option<(i64, i64)> {
    let t_def = i64::from(s.time[n.index()]);
    let mut t_end = None;
    for (_, e) in fp.ddg.succ_edges(n) {
        let use_t = i64::from(s.time[e.dst.index()]) + i64::from(s.ii) * i64::from(e.distance);
        t_end = Some(t_end.map_or(use_t, |x: i64| x.max(use_t)));
    }
    t_end.map(|e| (t_def, e.max(t_def + 1)))
}

/// Allocate every live value to rotating registers, per producing CN.
pub fn allocate_rotating(
    fp: &FinalProgram,
    fabric: &DspFabric,
    s: &ModuloSchedule,
) -> RotatingAllocation {
    let mut per_cn: Vec<Vec<ValueSlot>> = vec![Vec::new(); fabric.num_cns()];
    let mut registers_used = vec![0u32; fabric.num_cns()];

    // Gather lifetimes per CN, sorted by definition time (linear scan).
    let mut by_cn: Vec<Vec<(NodeId, i64, i64)>> = vec![Vec::new(); fabric.num_cns()];
    for n in fp.ddg.node_ids() {
        if let Some((def, end)) = lifetime(fp, s, n) {
            by_cn[fp.placement[n.index()].index()].push((n, def, end));
        }
    }
    for (cn, mut values) in by_cn.into_iter().enumerate() {
        values.sort_by_key(|&(n, def, _)| (def, n.0));
        // free_at[r] = absolute cycle at which base register r's occupant
        // dies (its whole rotation window has drained).
        let mut free_at: Vec<i64> = Vec::new();
        for (n, def, end) in values {
            let life = (end - def) as u64;
            let depth = u32::try_from(life.div_ceil(u64::from(s.ii)))
                .unwrap()
                .max(1);
            // A value of depth d occupies its base register(s) until every
            // rotated instance is dead: end + (d−1)·II ≥ conservative drain.
            let drain = end + i64::from(depth - 1) * i64::from(s.ii);
            let base = match free_at.iter().position(|&f| f <= def) {
                Some(r) => {
                    free_at[r] = drain;
                    r
                }
                None => {
                    free_at.push(drain);
                    free_at.len() - 1
                }
            };
            per_cn[cn].push(ValueSlot {
                value: n,
                base_register: base as u32,
                depth,
            });
            let high = base as u32 + depth;
            registers_used[cn] = registers_used[cn].max(high);
        }
    }
    RotatingAllocation {
        per_cn,
        registers_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::modulo_schedule;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::{DdgBuilder, Opcode};

    fn alloc_for(ddg: &hca_ddg::Ddg) -> (RotatingAllocation, ModuloSchedule) {
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        (allocate_rotating(&res.final_program, &fabric, &s), s)
    }

    #[test]
    fn long_lived_values_get_depth() {
        // load (latency 8) feeding a consumer: lifetime ≥ 8 cycles.
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::AddrAdd);
        b.carried(a, a, 1);
        let x = b.op_with(Opcode::Load, &[a]);
        let y = b.op_with(Opcode::Shift, &[x]);
        b.op_with(Opcode::Store, &[y, a]);
        let ddg = b.finish();
        let (alloc, s) = alloc_for(&ddg);
        let slot = alloc
            .per_cn
            .iter()
            .flatten()
            .find(|v| v.value == x)
            .expect("the load's value is allocated");
        assert!(slot.depth * s.ii >= 8 || slot.depth >= 1);
        assert!(alloc.max_registers() >= 1);
        assert!(alloc.fits(64), "{:?}", alloc.registers_used);
    }

    #[test]
    fn disjoint_lifetimes_share_registers() {
        // A serial chain on (mostly) one CN: each value dies as the next is
        // born, so register usage stays far below the value count.
        let mut b = DdgBuilder::default();
        let mut prev = b.node(Opcode::Const);
        for _ in 0..10 {
            prev = b.op_with(Opcode::Add, &[prev]);
        }
        b.op_with(Opcode::Store, &[prev]);
        let ddg = b.finish();
        let (alloc, _) = alloc_for(&ddg);
        let total_values: usize = alloc.per_cn.iter().map(Vec::len).sum();
        assert!(total_values >= 10);
        assert!(
            alloc.max_registers() <= 6,
            "chain should reuse registers: {:?}",
            alloc.registers_used
        );
    }

    #[test]
    fn table1_kernels_fit_a_64_entry_file() {
        for kernel in hca_kernels::table1_kernels() {
            let (alloc, _) = alloc_for(&kernel.ddg);
            assert!(
                alloc.fits(64),
                "{}: {:?}",
                kernel.name,
                alloc.max_registers()
            );
        }
    }
}
