//! Kernel-Only Modulo Scheduling view (Rau, Schlansker & Tirumalai '92).
//!
//! KOMS keeps only the kernel in memory: prologue and epilogue are realised
//! by predicating each operation on its pipeline *stage* being active, and
//! a cyclic program counter walks the II-cycle kernel (paper §2.2: "no
//! branches are allowed and the execution is controlled by a cyclic program
//! counter"). This module folds a [`ModuloSchedule`] into that kernel form.

use crate::modsched::ModuloSchedule;
use hca_arch::{CnId, DspFabric};
use hca_core::FinalProgram;
use hca_ddg::NodeId;

/// One kernel entry: the op a CN issues in a given kernel cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelOp {
    /// The final-DDG node.
    pub node: NodeId,
    /// Pipeline stage the op belongs to (its activation predicate index).
    pub stage: u32,
}

/// The folded kernel: `ops[cn][cycle]` for `cycle ∈ 0..ii`.
#[derive(Clone, Debug)]
pub struct KernelSchedule {
    /// Initiation interval (kernel length in cycles).
    pub ii: u32,
    /// Stage count (pipeline depth in iterations).
    pub stages: u32,
    ops: Vec<Vec<Option<KernelOp>>>,
}

impl KernelSchedule {
    /// Fold a modulo schedule into kernel form.
    pub fn fold(fp: &FinalProgram, fabric: &DspFabric, s: &ModuloSchedule) -> Self {
        let mut ops = vec![vec![None; s.ii as usize]; fabric.num_cns()];
        for n in fp.ddg.node_ids() {
            let cn = fp.placement[n.index()];
            let slot = s.slot(n) as usize;
            let prev = ops[cn.index()][slot].replace(KernelOp {
                node: n,
                stage: s.stage(n),
            });
            assert!(prev.is_none(), "single-issue violation at {cn} slot {slot}");
        }
        KernelSchedule {
            ii: s.ii,
            stages: s.stages,
            ops,
        }
    }

    /// Op issued by `cn` at kernel cycle `cycle` (if any).
    pub fn op_at(&self, cn: CnId, cycle: u32) -> Option<KernelOp> {
        self.ops[cn.index()][(cycle % self.ii) as usize]
    }

    /// Steady-state issue-slot utilisation: occupied kernel slots over
    /// `num_cns · ii`.
    pub fn utilization(&self) -> f64 {
        let occupied: usize = self
            .ops
            .iter()
            .map(|cn| cn.iter().filter(|o| o.is_some()).count())
            .sum();
        let total = self.ops.len() * self.ii as usize;
        if total == 0 {
            0.0
        } else {
            occupied as f64 / total as f64
        }
    }

    /// Is `op`'s stage active in global cycle `t` for a loop of
    /// `trip_count` iterations? This is the KOMS stage predicate: stage `s`
    /// of iteration `i` executes during kernel pass `i + s`.
    pub fn stage_active(&self, stage: u32, kernel_pass: u64, trip_count: u64) -> bool {
        // Kernel pass p runs stage s of iteration p − s.
        kernel_pass >= u64::from(stage) && (kernel_pass - u64::from(stage)) < trip_count
    }

    /// Number of kernel passes needed for `trip_count` iterations.
    pub fn total_passes(&self, trip_count: u64) -> u64 {
        if trip_count == 0 {
            0
        } else {
            trip_count + u64::from(self.stages) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::modulo_schedule;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::{DdgBuilder, Opcode};

    fn folded() -> (FinalProgram, KernelSchedule) {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::AddrAdd);
        b.carried(a, a, 1);
        let x = b.op_with(Opcode::Load, &[a]);
        let y = b.op_with(Opcode::Mul, &[x]);
        b.op_with(Opcode::Store, &[y, a]);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let k = KernelSchedule::fold(&res.final_program, &fabric, &s);
        (res.final_program, k)
    }

    #[test]
    fn every_node_lands_in_exactly_one_slot() {
        let (fp, k) = folded();
        let fabric = DspFabric::standard(8, 8, 8);
        let mut seen = 0;
        for cn in fabric.cn_ids() {
            for cycle in 0..k.ii {
                if k.op_at(cn, cycle).is_some() {
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, fp.ddg.num_nodes());
        assert!(k.utilization() > 0.0);
    }

    #[test]
    fn stage_predicates_ramp_up_and_drain() {
        let (_, k) = folded();
        let trip = 5u64;
        // Stage 0 active from pass 0 to trip−1.
        assert!(k.stage_active(0, 0, trip));
        assert!(k.stage_active(0, trip - 1, trip));
        assert!(!k.stage_active(0, trip, trip));
        // The deepest stage activates last and drains last.
        let last = k.stages - 1;
        if k.stages > 1 {
            assert!(!k.stage_active(last, 0, trip));
        }
        assert!(k.stage_active(last, u64::from(last), trip));
        assert_eq!(k.total_passes(trip), trip + u64::from(k.stages) - 1);
        assert_eq!(k.total_passes(0), 0);
    }
}
