//! DMA programming — the paper's remaining future-work item (§5): "the DMA
//! programming … in order to keep the loop execution synchronous with the
//! memory accesses."
//!
//! The programmable DMA (§2.2) serves a bounded number of simultaneous
//! requests and masks latency with input/output FIFOs "of depth equal to
//! the serving time". Given a modulo schedule this module derives the DMA
//! program: one stream descriptor per memory operation (direction, the
//! induction pointer it strides along, its kernel issue slot) plus the
//! steady-state analysis — requests per kernel cycle (must fit the ports)
//! and the in-flight high-water mark (the FIFO depth the streams need).

use crate::modsched::ModuloSchedule;
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::{NodeId, Opcode};

/// Direction of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamDir {
    /// Memory → fabric (loads).
    In,
    /// Fabric → memory (stores).
    Out,
}

/// One stream descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamDescriptor {
    /// The memory operation.
    pub node: NodeId,
    /// Load or store.
    pub dir: StreamDir,
    /// The loop-carried induction pointer the address chain roots in, if
    /// the walk finds one (`None` for loop-invariant addresses).
    pub induction: Option<NodeId>,
    /// Address-generation hops between the induction pointer and the
    /// access — the descriptor's constant offset/stride class.
    pub offset_hops: u32,
    /// Kernel cycle (mod II) at which the request issues.
    pub slot: u32,
    /// Pipeline stage of the request.
    pub stage: u32,
}

/// The derived DMA program.
#[derive(Clone, Debug)]
pub struct DmaProgram {
    /// One descriptor per memory operation, ordered by (slot, node).
    pub streams: Vec<StreamDescriptor>,
    /// Requests issued per kernel cycle.
    pub requests_per_cycle: Vec<u32>,
    /// Steady-state in-flight high-water mark (needed FIFO depth).
    pub max_inflight: u32,
}

impl DmaProgram {
    /// Does the program respect the DMA's port budget every cycle?
    pub fn fits_ports(&self, fabric: &DspFabric) -> bool {
        self.requests_per_cycle
            .iter()
            .all(|&r| r <= fabric.dma.ports)
    }

    /// Does the steady-state in-flight population fit FIFOs of the paper's
    /// prescribed depth (one entry per cycle of serving time, per port)?
    pub fn fits_fifos(&self, fabric: &DspFabric) -> bool {
        self.max_inflight <= fabric.dma.fifo_depth() * fabric.dma.ports
    }
}

/// Follow transparent transport nodes (`recv`/`route`) to the value's real
/// producer.
fn see_through(ddg: &hca_ddg::Ddg, mut n: NodeId) -> NodeId {
    let mut guard = 0usize;
    while matches!(ddg.node(n).op, Opcode::Recv | Opcode::Route) {
        let Some(src) = ddg.pred_edges(n).map(|(_, e)| e.src).next() else {
            break;
        };
        n = src;
        guard += 1;
        if guard > ddg.num_nodes() {
            break;
        }
    }
    n
}

/// Walk the address operand chain of a memory op back to its loop-carried
/// induction pointer (a self-recurrent address-generation node). Transport
/// nodes inserted by the post-pass are transparent to the walk.
fn find_induction(fp: &FinalProgram, mem: NodeId) -> (Option<NodeId>, u32) {
    let ddg = &fp.ddg;
    // The address operand: an AddrGen-class predecessor (stores also take a
    // data operand; loads may take exactly one address).
    let mut cur = ddg
        .pred_edges(mem)
        .map(|(_, e)| see_through(ddg, e.src))
        .find(|&p| {
            ddg.node(p).op.resource_class() == hca_ddg::ResourceClass::AddrGen
                && !ddg.node(p).op.is_memory()
        });
    let mut hops = 0u32;
    while let Some(a) = cur {
        let self_recurrent = ddg.succ_edges(a).any(|(_, e)| e.dst == a && e.distance > 0)
            || ddg.pred_edges(a).any(|(_, e)| e.src == a && e.distance > 0);
        let carried_in = ddg.pred_edges(a).any(|(_, e)| e.distance > 0);
        if self_recurrent || carried_in {
            return (Some(a), hops);
        }
        hops += 1;
        cur = ddg
            .pred_edges(a)
            .filter(|(_, e)| e.distance == 0)
            .map(|(_, e)| see_through(ddg, e.src))
            .find(|&p| ddg.node(p).op.resource_class() == hca_ddg::ResourceClass::AddrGen);
        if hops > ddg.num_nodes() as u32 {
            break; // defensive
        }
    }
    (None, hops)
}

/// Derive the DMA program for a scheduled, placed kernel.
pub fn derive_dma_program(fp: &FinalProgram, fabric: &DspFabric, s: &ModuloSchedule) -> DmaProgram {
    let ddg = &fp.ddg;
    let mut streams: Vec<StreamDescriptor> = Vec::new();
    for n in ddg.node_ids() {
        let op = ddg.node(n).op;
        if !op.is_memory() {
            continue;
        }
        let (induction, offset_hops) = find_induction(fp, n);
        streams.push(StreamDescriptor {
            node: n,
            dir: if op == Opcode::Load {
                StreamDir::In
            } else {
                StreamDir::Out
            },
            induction,
            offset_hops,
            slot: s.slot(n),
            stage: s.stage(n),
        });
    }
    streams.sort_by_key(|d| (d.slot, d.node));

    let ii = s.ii;
    let mut requests_per_cycle = vec![0u32; ii as usize];
    for d in &streams {
        requests_per_cycle[d.slot as usize] += 1;
    }
    // Steady-state occupancy: a request issued at slot `s` is in flight for
    // `latency` cycles; per stream that is `latency / II` permanent entries
    // plus one more during the first `latency mod II` phases after issue.
    let latency = fabric.dma.latency;
    let base = latency / ii;
    let rem = latency % ii;
    let max_inflight = (0..ii)
        .map(|t| {
            streams
                .iter()
                .map(|d| base + u32::from((t + ii - d.slot) % ii < rem))
                .sum::<u32>()
        })
        .max()
        .unwrap_or(0);

    DmaProgram {
        streams,
        requests_per_cycle,
        max_inflight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::modulo_schedule;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::DdgBuilder;

    fn program_for(ddg: &hca_ddg::Ddg) -> (DmaProgram, DspFabric, ModuloSchedule) {
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        (
            derive_dma_program(&res.final_program, &fabric, &s),
            fabric,
            s,
        )
    }

    #[test]
    fn streams_find_their_induction_pointers() {
        let mut b = DdgBuilder::default();
        let ind = b.named(Opcode::AddrAdd, "p++");
        b.carried(ind, ind, 1);
        let off = b.op_with(Opcode::AddrAdd, &[ind]); // one hop
        let ld = b.op_with(Opcode::Load, &[off]);
        let y = b.op_with(Opcode::Shift, &[ld]);
        let st = b.op_with(Opcode::Store, &[y, ind]); // direct
        let ddg = b.finish();
        let (prog, fabric, _) = program_for(&ddg);
        assert_eq!(prog.streams.len(), 2);
        let load = prog
            .streams
            .iter()
            .find(|d| d.dir == StreamDir::In)
            .unwrap();
        let store = prog
            .streams
            .iter()
            .find(|d| d.dir == StreamDir::Out)
            .unwrap();
        assert_eq!(load.induction, Some(ind));
        assert_eq!(load.offset_hops, 1);
        assert_eq!(store.induction, Some(ind));
        assert_eq!(store.offset_hops, 0);
        assert!(prog.fits_ports(&fabric));
        let _ = (ld, st);
    }

    #[test]
    fn port_budget_respected_by_schedule() {
        // 10 loads per iteration on 8 ports: the scheduler must spread the
        // request slots so no cycle exceeds 8 — the DMA program verifies it.
        let mut b = DdgBuilder::default();
        for _ in 0..10 {
            let p = b.node(Opcode::AddrAdd);
            b.carried(p, p, 1);
            let x = b.op_with(Opcode::Load, &[p]);
            let _ = b.op_with(Opcode::Shift, &[x]);
        }
        let ddg = b.finish();
        let (prog, fabric, s) = program_for(&ddg);
        assert!(prog.fits_ports(&fabric), "{:?}", prog.requests_per_cycle);
        assert_eq!(
            prog.requests_per_cycle.iter().sum::<u32>(),
            10,
            "II {}",
            s.ii
        );
    }

    #[test]
    fn inflight_accounting_matches_hand_math() {
        // One load at slot 0, latency 8, II 4: 2 permanently in flight.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::AddrAdd);
        b.carried(p, p, 1);
        let x = b.op_with(Opcode::Load, &[p]);
        let acc = b.op_with(Opcode::Mac, &[x]);
        b.edge(acc, acc, 4, 1); // force II = 4 via a latency-4 recurrence
        b.op_with(Opcode::Store, &[acc, p]);
        let ddg = b.finish();
        let (prog, fabric, s) = program_for(&ddg);
        assert_eq!(s.ii, 4);
        // in-flight for the load: 8/4 = 2 (+1 transient never, 8 % 4 == 0),
        // the store adds its own smaller term.
        assert!(prog.max_inflight >= 2, "{}", prog.max_inflight);
        assert!(prog.fits_fifos(&fabric));
    }

    #[test]
    fn table1_kernels_fit_dma() {
        for kernel in hca_kernels::table1_kernels() {
            let (prog, fabric, _) = program_for(&kernel.ddg);
            assert!(prog.fits_ports(&fabric), "{}", kernel.name);
            assert!(prog.fits_fifos(&fabric), "{}", kernel.name);
        }
    }
}
