//! Input-buffer occupancy analysis.
//!
//! §2.2: "Two regions of its register file are organized as input buffers,
//! which push the incoming values on top, but can be read randomly by the
//! receiver." Every value a CN receives sits in an input-buffer entry from
//! the cycle its `recv` issues until the last local consumer has read it —
//! with modulo overlap, `ceil(lifetime / II)` entries stay occupied in
//! steady state. This module computes the per-CN high-water mark so a
//! schedule can be checked against the buffer region size.

use crate::modsched::ModuloSchedule;
use hca_arch::DspFabric;
use hca_core::FinalProgram;
use hca_ddg::Opcode;

/// Steady-state input-buffer occupancy per CN.
pub fn input_buffer_pressure(
    fp: &FinalProgram,
    fabric: &DspFabric,
    s: &ModuloSchedule,
) -> Vec<u32> {
    let mut occupancy = vec![0u32; fabric.num_cns()];
    for n in fp.ddg.node_ids() {
        if fp.ddg.node(n).op != Opcode::Recv {
            continue;
        }
        let cn = fp.placement[n.index()];
        let born = i64::from(s.time[n.index()]);
        let mut dead = born;
        for (_, e) in fp.ddg.succ_edges(n) {
            let read = i64::from(s.time[e.dst.index()]) + i64::from(s.ii) * i64::from(e.distance);
            dead = dead.max(read);
        }
        let life = (dead - born).max(1) as u64;
        occupancy[cn.index()] += u32::try_from(life.div_ceil(u64::from(s.ii))).unwrap();
    }
    occupancy
}

/// Does every CN's buffered population fit `capacity` entries (the size of
/// its two input-buffer regions combined)?
pub fn buffers_fit(pressure: &[u32], capacity: u32) -> bool {
    pressure.iter().all(|&p| p <= capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modsched::modulo_schedule;
    use hca_core::{run_hca, HcaConfig};
    use hca_ddg::DdgBuilder;

    #[test]
    fn receiving_cns_have_buffered_values() {
        // A producer chain forced across clusters by sheer width: some CN
        // receives, so some CN buffers.
        let mut b = DdgBuilder::default();
        for _ in 0..6 {
            let x = b.node(Opcode::Load);
            let p = b.node(Opcode::AddrAdd);
            b.carried(p, p, 1);
            b.flow(p, x);
            let y = b.op_with(Opcode::Mul, &[x]);
            b.op_with(Opcode::Store, &[y, p]);
        }
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let occ = input_buffer_pressure(&res.final_program, &fabric, &s);
        let total: u32 = occ.iter().sum();
        assert_eq!(
            total > 0,
            res.final_program.num_recvs() > 0,
            "buffers occupied iff values are received"
        );
        assert!(buffers_fit(&occ, 32));
    }

    #[test]
    fn table1_kernels_fit_modest_buffers() {
        let fabric = DspFabric::standard(8, 8, 8);
        for kernel in hca_kernels::table1_kernels() {
            let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default()).unwrap();
            let s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
            let occ = input_buffer_pressure(&res.final_program, &fabric, &s);
            assert!(
                buffers_fit(&occ, 32),
                "{}: worst {}",
                kernel.name,
                occ.iter().max().unwrap()
            );
        }
    }
}
