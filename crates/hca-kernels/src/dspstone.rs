//! Extra DSPstone-style kernels beyond the four Table-1 loops — used by the
//! extended benches and examples (the paper's intro motivates exactly this
//! class of loop bodies).

use hca_ddg::{Ddg, DdgBuilder, Opcode};

/// 1-D FIR filter, `taps` taps: serial MAC accumulation over a delay line
/// kept in rotating registers (distance-1 reuse), one load and one store per
/// iteration.
pub fn fir(taps: usize) -> Ddg {
    assert!(taps >= 1);
    let mut b = DdgBuilder::default();
    let in_ptr = b.named(Opcode::AddrAdd, "in_ptr++");
    b.carried(in_ptr, in_ptr, 1);
    let x0 = b.op_with(Opcode::Load, &[in_ptr]);
    // Delay line: x[k] of this iteration is x[k−1] of the next.
    let mut prods = Vec::with_capacity(taps);
    for k in 0..taps {
        let coef = b.named(Opcode::Const, format!("h{k}"));
        let p = b.node(Opcode::Mul);
        b.flow(coef, p);
        if k == 0 {
            b.flow(x0, p);
        } else {
            // Sample from k iterations ago.
            b.edge(x0, p, 8, k as u32);
        }
        prods.push(p);
    }
    let sum = b.reduce_tree(Opcode::Add, &prods);
    let out_ptr = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out_ptr, out_ptr, 1);
    b.op_with(Opcode::Store, &[sum, out_ptr]);
    b.finish()
}

/// `n×n` matrix–vector product row: `y[i] = Σ_j a[i][j]·x[j]` fully
/// unrolled over `j` — a wide, reduction-heavy body.
pub fn matvec_row(n: usize) -> Ddg {
    assert!(n >= 1);
    let mut b = DdgBuilder::default();
    let row_ptr = b.named(Opcode::AddrAdd, "row_ptr++");
    b.carried(row_ptr, row_ptr, 1);
    let mut prods = Vec::with_capacity(n);
    let mut addr = row_ptr;
    for j in 0..n {
        if j > 0 {
            addr = b.op_with(Opcode::AddrAdd, &[addr]);
        }
        let a = b.op_with(Opcode::Load, &[addr]);
        let x = b.named(Opcode::Const, format!("x{j}")); // x[] pinned in registers
        prods.push(b.op_with(Opcode::Mul, &[a, x]));
    }
    let sum = b.reduce_tree(Opcode::Add, &prods);
    let out = b.named(Opcode::AddrAdd, "y_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[sum, out]);
    b.finish()
}

/// Biquad IIR section: the classical two-pole/two-zero filter whose output
/// recurrence (`y` feeds back over one and two iterations through a
/// multiply) makes MIIRec latency-bound rather than resource-bound.
pub fn biquad() -> Ddg {
    let mut b = DdgBuilder::default();
    let in_ptr = b.named(Opcode::AddrAdd, "in_ptr++");
    b.carried(in_ptr, in_ptr, 1);
    let x = b.op_with(Opcode::Load, &[in_ptr]);
    let (b0, b1, b2, a1, a2) = (
        b.named(Opcode::Const, "b0"),
        b.named(Opcode::Const, "b1"),
        b.named(Opcode::Const, "b2"),
        b.named(Opcode::Const, "a1"),
        b.named(Opcode::Const, "a2"),
    );
    let fx0 = b.op_with(Opcode::Mul, &[x, b0]);
    let fx1 = b.node(Opcode::Mul); // x[n−1]·b1
    b.flow(b1, fx1);
    b.edge(x, fx1, 8, 1);
    let fx2 = b.node(Opcode::Mul); // x[n−2]·b2
    b.flow(b2, fx2);
    b.edge(x, fx2, 8, 2);
    let fwd0 = b.op_with(Opcode::Add, &[fx0, fx1]);
    let fwd = b.op_with(Opcode::Add, &[fwd0, fx2]);
    // Feedback half: y[n] = fwd − a1·y[n−1] − a2·y[n−2].
    let fy1 = b.node(Opcode::Mul);
    b.flow(a1, fy1);
    let fy2 = b.node(Opcode::Mul);
    b.flow(a2, fy2);
    let part = b.op_with(Opcode::Sub, &[fwd, fy1]);
    let y = b.op_with(Opcode::Sub, &[part, fy2]);
    b.carried(y, fy1, 1);
    b.carried(y, fy2, 2);
    let out_ptr = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out_ptr, out_ptr, 1);
    b.op_with(Opcode::Store, &[y, out_ptr]);
    b.finish()
}

/// Dot product over two streamed vectors with a carried accumulator —
/// DSPstone's `dot_product`, the smallest reduction loop.
pub fn dot_product() -> Ddg {
    let mut b = DdgBuilder::default();
    let pa = b.named(Opcode::AddrAdd, "a_ptr++");
    b.carried(pa, pa, 1);
    let pb = b.named(Opcode::AddrAdd, "b_ptr++");
    b.carried(pb, pb, 1);
    let a = b.op_with(Opcode::Load, &[pa]);
    let x = b.op_with(Opcode::Load, &[pb]);
    let acc = b.op_with(Opcode::Mac, &[a, x]);
    b.carried(acc, acc, 1);
    let out = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[acc, out]);
    b.finish()
}

/// DSPstone `n_real_updates`: `d[i] = c[i] + a[i]·b[i]`, `n` updates per
/// iteration — pure width, no recurrences beyond the pointers.
pub fn n_real_updates(n: usize) -> Ddg {
    assert!(n >= 1);
    let mut b = DdgBuilder::default();
    for i in 0..n {
        let pa = b.named(Opcode::AddrAdd, format!("a{i}++"));
        b.carried(pa, pa, 1);
        let pb = b.named(Opcode::AddrAdd, format!("b{i}++"));
        b.carried(pb, pb, 1);
        let pc = b.named(Opcode::AddrAdd, format!("c{i}++"));
        b.carried(pc, pc, 1);
        let a = b.op_with(Opcode::Load, &[pa]);
        let x = b.op_with(Opcode::Load, &[pb]);
        let c = b.op_with(Opcode::Load, &[pc]);
        let prod = b.op_with(Opcode::Mul, &[a, x]);
        let d = b.op_with(Opcode::Add, &[c, prod]);
        let pd = b.named(Opcode::AddrAdd, format!("d{i}++"));
        b.carried(pd, pd, 1);
        b.op_with(Opcode::Store, &[d, pd]);
    }
    b.finish()
}

/// DSPstone `convolution`: like [`fir`] but both operands streamed from
/// memory (signal and kernel), doubling the load pressure.
pub fn convolution(taps: usize) -> Ddg {
    assert!(taps >= 1);
    let mut b = DdgBuilder::default();
    let px = b.named(Opcode::AddrAdd, "x_ptr++");
    b.carried(px, px, 1);
    let ph = b.named(Opcode::AddrAdd, "h_ptr");
    b.carried(ph, ph, 1);
    let x0 = b.op_with(Opcode::Load, &[px]);
    let mut prods = Vec::with_capacity(taps);
    let mut haddr = ph;
    for k in 0..taps {
        if k > 0 {
            haddr = b.op_with(Opcode::AddrAdd, &[haddr]);
        }
        let h = b.op_with(Opcode::Load, &[haddr]);
        let p = b.node(Opcode::Mul);
        b.flow(h, p);
        if k == 0 {
            b.flow(x0, p);
        } else {
            b.edge(x0, p, 8, k as u32); // delay line via rotating registers
        }
        prods.push(p);
    }
    let sum = b.reduce_tree(Opcode::Add, &prods);
    let out = b.named(Opcode::AddrAdd, "y_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[sum, out]);
    b.finish()
}

/// LMS adaptive filter step: FIR output plus per-tap coefficient update
/// `h[k] += µ·e·x[k]` — the coefficient recurrences (load→mac→store would
/// be memory-carried; we keep coefficients in rotating registers, so each
/// tap carries its own mac recurrence).
pub fn lms(taps: usize) -> Ddg {
    assert!(taps >= 1);
    let mut b = DdgBuilder::default();
    let px = b.named(Opcode::AddrAdd, "x_ptr++");
    b.carried(px, px, 1);
    let x0 = b.op_with(Opcode::Load, &[px]);
    // FIR half with register-resident coefficients.
    let mut taps_out = Vec::with_capacity(taps);
    let mut coeffs = Vec::with_capacity(taps);
    for k in 0..taps {
        // Coefficient register: updated every iteration (see below).
        let h = b.named(Opcode::Add, format!("h{k}'"));
        coeffs.push(h);
        let p = b.node(Opcode::Mul);
        b.carried(h, p, 1); // reads last iteration's coefficient
        if k == 0 {
            b.flow(x0, p);
        } else {
            b.edge(x0, p, 8, k as u32);
        }
        taps_out.push(p);
    }
    let y = b.reduce_tree(Opcode::Add, &taps_out);
    // Error against the streamed desired signal.
    let pd = b.named(Opcode::AddrAdd, "d_ptr++");
    b.carried(pd, pd, 1);
    let d = b.op_with(Opcode::Load, &[pd]);
    let e = b.op_with(Opcode::Sub, &[d, y]);
    let mu = b.named(Opcode::Const, "mu");
    let mu_e = b.op_with(Opcode::Mul, &[mu, e]);
    // Coefficient updates close the per-tap recurrences.
    for (k, &h) in coeffs.iter().enumerate() {
        let grad = b.node(Opcode::Mul);
        b.flow(mu_e, grad);
        if k == 0 {
            b.flow(x0, grad);
        } else {
            b.edge(x0, grad, 8, k as u32);
        }
        // h' = h@1 + grad
        b.carried(h, h, 1);
        b.flow(grad, h);
    }
    let out = b.named(Opcode::AddrAdd, "y_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[y, out]);
    b.finish()
}

/// 1×3 matrix times 3×3 matrix (DSPstone `matrix1x3`): nine MACs with all
/// matrix elements streamed.
pub fn matrix1x3() -> Ddg {
    let mut b = DdgBuilder::default();
    let pv = b.named(Opcode::AddrAdd, "v_ptr");
    b.carried(pv, pv, 1);
    let mut vaddr = pv;
    let mut v = Vec::new();
    for k in 0..3 {
        if k > 0 {
            vaddr = b.op_with(Opcode::AddrAdd, &[vaddr]);
        }
        v.push(b.op_with(Opcode::Load, &[vaddr]));
    }
    let pm = b.named(Opcode::AddrAdd, "m_ptr");
    b.carried(pm, pm, 1);
    let mut maddr = pm;
    let out_base = b.named(Opcode::AddrAdd, "out_ptr");
    b.carried(out_base, out_base, 1);
    let mut oaddr = out_base;
    for col in 0..3 {
        let mut prods = Vec::new();
        for (row, &vr) in v.iter().enumerate() {
            if !(col == 0 && row == 0) {
                maddr = b.op_with(Opcode::AddrAdd, &[maddr]);
            }
            let m = b.op_with(Opcode::Load, &[maddr]);
            prods.push(b.op_with(Opcode::Mul, &[vr, m]));
        }
        let sum = b.reduce_tree(Opcode::Add, &prods);
        if col > 0 {
            oaddr = b.op_with(Opcode::AddrAdd, &[oaddr]);
        }
        b.op_with(Opcode::Store, &[sum, oaddr]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;

    #[test]
    fn fir_shape() {
        let g = fir(8);
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 8);
        assert_eq!(g.count_ops(|o| o == Opcode::Add), 7);
        assert_eq!(g.count_ops(|o| o.is_memory()), 2);
        assert_eq!(analysis::mii_rec(&g).unwrap(), 1);
    }

    #[test]
    fn matvec_scales() {
        let g = matvec_row(16);
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 16);
        assert_eq!(g.count_ops(|o| o == Opcode::Load), 16);
        assert!(analysis::intra_topo_order(&g).is_some());
    }

    #[test]
    fn dot_product_shape() {
        let g = dot_product();
        assert_eq!(g.count_ops(|o| o == Opcode::Mac), 1);
        assert_eq!(g.count_ops(|o| o.is_memory()), 3);
        // mac self-recurrence: latency 2 over distance 1.
        assert_eq!(analysis::mii_rec(&g).unwrap(), 2);
    }

    #[test]
    fn n_real_updates_scales_width() {
        let g = n_real_updates(4);
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 4);
        assert_eq!(g.count_ops(|o| o.is_memory()), 16);
        assert_eq!(analysis::mii_rec(&g).unwrap(), 1);
    }

    #[test]
    fn convolution_streams_both_operands() {
        let g = convolution(6);
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 6);
        // 1 signal + 6 kernel loads + 1 store.
        assert_eq!(g.count_ops(|o| o.is_memory()), 8);
        assert!(analysis::intra_topo_order(&g).is_some());
    }

    #[test]
    fn lms_has_a_long_coefficient_recurrence() {
        let g = lms(4);
        // x → mul → Σ → e → µe → grad → h' → (next iter) mul: the adaptive
        // loop is the binding recurrence and far exceeds the pointer MII.
        let rec = analysis::mii_rec(&g).unwrap();
        assert!(rec >= 6, "LMS recurrence too short: {rec}");
        assert!(analysis::intra_topo_order(&g).is_some());
    }

    #[test]
    fn matrix1x3_shape() {
        let g = matrix1x3();
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 9);
        assert_eq!(g.count_ops(|o| o == Opcode::Store), 3);
        assert_eq!(g.count_ops(|o| o == Opcode::Load), 12);
        assert_eq!(analysis::mii_rec(&g).unwrap(), 1);
    }

    #[test]
    fn biquad_recurrence() {
        let g = biquad();
        // y → a1·y (mul, lat 2) → sub (1) → sub (1)… cycle over distance 1:
        // fy1(2)… the y→fy1→part→y cycle has latency mul(2)+alu(1)+alu(1)=4.
        assert_eq!(analysis::mii_rec(&g).unwrap(), 4);
    }
}
