//! `fir2dim` — the 2-dimensional FIR filter from the DSPstone bench-suite.
//!
//! One iteration produces one output pixel of a 3×3 convolution:
//!
//! * a shared row pointer walks the image with a wrap-around check at the
//!   line boundary — an `addr → cmp → select → addr` recurrence of latency
//!   3 at distance 1, which is what pins `MIIRec = 3`;
//! * 9 pixel loads (the centre one straight off the row pointer, the other
//!   8 at constant offsets), 9 constant coefficients, 9 multiplies and a
//!   balanced 8-add reduction tree;
//! * one store through a self-incrementing output pointer.
//!
//! 10 memory operations on 8 DMA ports give `MIIRes = 2`; 57 instructions
//! total (Table 1).

use crate::{Expected, Kernel};
use hca_ddg::{DdgBuilder, Opcode};

/// Build the `fir2dim` DDG.
pub fn build() -> Kernel {
    let mut b = DdgBuilder::default();

    // Row pointer with line-boundary wrap: the MIIRec-3 recurrence.
    let base = b.named(Opcode::AddrAdd, "row_ptr++");
    let limit = b.named(Opcode::Const, "line_end");
    let wrapped = b.named(Opcode::Cmp, "at_line_end?");
    b.flow(base, wrapped);
    b.flow(limit, wrapped);
    let row = b.named(Opcode::Select, "row_ptr'");
    b.flow(wrapped, row);
    b.carried(row, base, 1); // row_ptr' of iteration i feeds the ++ of i+1

    // 3×3 window: centre pixel straight off the pointer, 8 neighbours at
    // constant offsets.
    let mut pixels = Vec::with_capacity(9);
    pixels.push(b.op_with(Opcode::Load, &[row]));
    for k in 0..8 {
        let off = b.named(Opcode::Const, format!("off{k}"));
        let addr = b.op_with(Opcode::AddrAdd, &[row, off]);
        pixels.push(b.op_with(Opcode::Load, &[addr]));
    }

    // Coefficients and multiplies.
    let mut prods = Vec::with_capacity(9);
    for (k, &px) in pixels.iter().enumerate() {
        let coef = b.named(Opcode::Const, format!("c{k}"));
        prods.push(b.op_with(Opcode::Mul, &[px, coef]));
    }

    // Balanced reduction: 8 adds.
    let sum = b.reduce_tree(Opcode::Add, &prods);

    // Output pointer and store.
    let out = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[sum, out]);

    Kernel {
        name: "fir2dim",
        ddg: b.finish(),
        expected: Expected {
            n_instr: 57,
            mii_rec: 3,
            mii_res: 2,
            paper_final_mii: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{analysis, ResourceClass};

    #[test]
    fn shape() {
        let k = build();
        assert_eq!(k.ddg.num_nodes(), 57);
        // 9 loads + 1 store.
        assert_eq!(k.ddg.count_ops(|o| o.is_memory()), 10);
        assert_eq!(k.ddg.count_ops(|o| o == Opcode::Mul), 9);
        assert_eq!(k.ddg.count_ops(|o| o == Opcode::Add), 8);
        // 8 window addrs + row/out pointers + 9 loads + 1 store.
        assert_eq!(
            k.ddg
                .count_ops(|o| o.resource_class() == ResourceClass::AddrGen),
            20
        );
    }

    #[test]
    fn recurrence_is_exactly_three() {
        let k = build();
        assert_eq!(analysis::mii_rec(&k.ddg).unwrap(), 3);
    }

    #[test]
    fn critical_path_dominated_by_load_then_mul() {
        let k = build();
        let an = analysis::DdgAnalysis::compute(&k.ddg).unwrap();
        // select(1)+addr(1)+load(8)+mul(2)+3-level add tree(3)+… ≥ 15
        assert!(an.levels.critical_path >= 15, "{}", an.levels.critical_path);
    }
}
