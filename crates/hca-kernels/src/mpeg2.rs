//! `mpeg2inter` — the interpolation (half-pel prediction) filter of the
//! MPEG-2 decoding algorithm.
//!
//! One iteration interpolates 8 pixels of a motion-compensated block:
//!
//! * the source pointer is updated through a six-operation loop-carried
//!   chain — motion-vector add, line-stride add and **two** wrap-around
//!   check/select pairs (block boundary and picture boundary), giving the
//!   `MIIRec = 6` recurrence of Table 1;
//! * vertical half-pel averaging uses the previous line kept in rotating
//!   registers (loop-carried value reuse, no extra loads): per pixel
//!   `(cur + prev + 1) >> 1`, then a second averaging stage against the
//!   previous prediction (B-frame style);
//! * 8 loads + 8 stores on 8 DMA ports ⇒ `MIIRes = 2`; 79 instructions.

use crate::{Expected, Kernel};
use hca_ddg::{DdgBuilder, Opcode};

/// Build the `mpeg2inter` DDG.
pub fn build() -> Kernel {
    let mut b = DdgBuilder::default();

    // Source-pointer recurrence: 6 single-cycle ops at distance 1.
    let limit = b.named(Opcode::Const, "bounds");
    let mv = b.named(Opcode::AddrAdd, "ptr+mv");
    let strided = b.op_with(Opcode::AddrAdd, &[mv]);
    let c1 = b.op_with(Opcode::Cmp, &[strided, limit]);
    let s1 = b.op_with(Opcode::Select, &[c1]);
    let c2 = b.op_with(Opcode::Cmp, &[s1, limit]);
    let s2 = b.op_with(Opcode::Select, &[c2]);
    b.carried(s2, mv, 1);

    // Current line: 8 loads through a chained walk.
    let mut cur = Vec::with_capacity(8);
    cur.push(b.op_with(Opcode::Load, &[s2]));
    let mut addr = s2;
    for _ in 0..7 {
        addr = b.op_with(Opcode::AddrAdd, &[addr]);
        cur.push(b.op_with(Opcode::Load, &[addr]));
    }

    // Stage 1: vertical half-pel — (cur + prev_line + 1) >> 1. The previous
    // line is this iteration's `cur` one iteration later (distance-1 reuse).
    let round = b.named(Opcode::Const, "1");
    let mut half = Vec::with_capacity(8);
    for &px in &cur {
        let with_prev = b.node(Opcode::Add);
        b.flow(px, with_prev);
        b.carried(px, with_prev, 1); // prev line from rotating registers
        let rounded = b.op_with(Opcode::Add, &[with_prev, round]);
        half.push(b.op_with(Opcode::Shift, &[rounded]));
    }

    // Stage 2: average against the previous prediction (distance-1 reuse of
    // the stage-1 result — B-frame bidirectional blend).
    let mut blend = Vec::with_capacity(8);
    for &h in &half {
        let acc = b.node(Opcode::Add);
        b.flow(h, acc);
        b.carried(h, acc, 1);
        blend.push(b.op_with(Opcode::Shift, &[acc]));
    }

    // Output: pointer walk + 8 stores.
    let out_base = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out_base, out_base, 1);
    let mut oaddr = out_base;
    b.op_with(Opcode::Store, &[blend[0], oaddr]);
    for &v in &blend[1..] {
        oaddr = b.op_with(Opcode::AddrAdd, &[oaddr]);
        b.op_with(Opcode::Store, &[v, oaddr]);
    }

    Kernel {
        name: "mpeg2inter",
        ddg: b.finish(),
        expected: Expected {
            n_instr: 79,
            mii_rec: 6,
            mii_res: 2,
            paper_final_mii: 8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;

    #[test]
    fn shape() {
        let k = build();
        assert_eq!(k.ddg.num_nodes(), 79, "{}", k.ddg.summary());
        assert_eq!(k.ddg.count_ops(|o| o.is_memory()), 16);
    }

    #[test]
    fn pointer_recurrence_pins_mii_at_six() {
        let k = build();
        assert_eq!(analysis::mii_rec(&k.ddg).unwrap(), 6);
    }

    #[test]
    fn value_reuse_edges_are_carried_not_cyclic() {
        let k = build();
        // Plenty of distance-1 edges but the intra-iteration graph is a DAG.
        assert!(analysis::intra_topo_order(&k.ddg).is_some());
        let carried = k.ddg.edges().iter().filter(|e| e.is_loop_carried()).count();
        assert!(carried >= 18, "{carried}");
    }
}
