//! `h264deblocking` — the row (luma vertical-edge) deblocking filter of the
//! H.264 in-loop filter.
//!
//! One iteration filters **two** 8-pixel edges of a macroblock row with the
//! full standard dataflow:
//!
//! * a shared row pointer with macroblock-boundary wrap
//!   (`addr → cmp → select`, the `MIIRec = 3` recurrence);
//! * a boundary-strength (bS) derivation block — motion-vector differences,
//!   coded-block flags and mixed-mode checks;
//! * per edge: 8 loads (`p3..p0`, `q0..q3`), the α/β activation thresholds,
//!   the weak filter (tc-clipped delta, `p0/q0/p1/q1` updates), the strong
//!   (bS = 4) filter for all six pixels, strong/weak selection and 6
//!   in-place stores.
//!
//! 2 edges × (8 loads + 6 stores) = 28 memory ops ⇒ `MIIRes` memory term
//! `ceil(28/8) = 4`, matching the issue term `ceil(214/64) = 4` (Table 1).

use crate::{Expected, Kernel};
use hca_ddg::{DdgBuilder, NodeId, Opcode};

struct SharedCtx {
    row: NodeId,
    alpha: NodeId,
    beta: NodeId,
    round: NodeId,
    tc0: NodeId,
    bs: NodeId,
}

/// One full edge filter; returns the number of nodes it added.
fn edge(b: &mut DdgBuilder, ctx: &SharedCtx, which: usize) -> usize {
    let before = b.graph().num_nodes();

    // Edge base: row pointer plus this edge's offset.
    let off = b.named(Opcode::Const, format!("edge{which}_off"));
    let base = b.op_with(Opcode::AddrAdd, &[ctx.row, off]);

    // p3..p0, q0..q3 through a chained walk (8 addrs incl. base, 8 loads).
    let mut addr = base;
    let mut px = Vec::with_capacity(8);
    px.push(b.op_with(Opcode::Load, &[addr]));
    for _ in 0..7 {
        addr = b.op_with(Opcode::AddrAdd, &[addr]);
        px.push(b.op_with(Opcode::Load, &[addr]));
    }
    let (p3, p2, p1, p0, q0, q1, q2, q3) = (px[0], px[1], px[2], px[3], px[4], px[5], px[6], px[7]);
    let _ = (p3, q3);

    // Activation: |p0−q0|<α, |p1−p0|<β, |q1−q0|<β, all three anded.
    let d0 = b.op_with(Opcode::AbsDiff, &[p0, q0]);
    let d1 = b.op_with(Opcode::AbsDiff, &[p1, p0]);
    let d2 = b.op_with(Opcode::AbsDiff, &[q1, q0]);
    let c0 = b.op_with(Opcode::Cmp, &[d0, ctx.alpha]);
    let c1 = b.op_with(Opcode::Cmp, &[d1, ctx.beta]);
    let c2 = b.op_with(Opcode::Cmp, &[d2, ctx.beta]);
    let a01 = b.op_with(Opcode::Logic, &[c0, c1]);
    let act = b.op_with(Opcode::Logic, &[a01, c2]);

    // ap = |p2−p0|<β, aq = |q2−q0|<β (luma extra taps).
    let dp = b.op_with(Opcode::AbsDiff, &[p2, p0]);
    let ap = b.op_with(Opcode::Cmp, &[dp, ctx.beta]);
    let dq = b.op_with(Opcode::AbsDiff, &[q2, q0]);
    let aq = b.op_with(Opcode::Cmp, &[dq, ctx.beta]);

    // Weak filter: Δ = clip(−tc, tc, ((q0−p0)·4 + (p1−q1) + 4) >> 3).
    let diff = b.op_with(Opcode::Sub, &[q0, p0]);
    let diff4 = b.op_with(Opcode::Shift, &[diff]);
    let taps = b.op_with(Opcode::Sub, &[p1, q1]);
    let sum = b.op_with(Opcode::Add, &[diff4, taps]);
    let rsum = b.op_with(Opcode::Add, &[sum, ctx.round]);
    let delta_raw = b.op_with(Opcode::Shift, &[rsum]);
    // tc = tc0 (+1 if ap) (+1 if aq).
    let tc_p = b.op_with(Opcode::Add, &[ctx.tc0, ap]);
    let tc = b.op_with(Opcode::Add, &[tc_p, aq]);
    let delta_hi = b.op_with(Opcode::MinMax, &[delta_raw, tc]);
    let delta = b.op_with(Opcode::MinMax, &[delta_hi, tc]); // max(−tc, ·)
    let p0w_r = b.op_with(Opcode::Add, &[p0, delta]);
    let p0w = b.op_with(Opcode::Clip, &[p0w_r]);
    let q0w_r = b.op_with(Opcode::Sub, &[q0, delta]);
    let q0w = b.op_with(Opcode::Clip, &[q0w_r]);
    let dhalf = b.op_with(Opcode::Shift, &[delta]);
    let p1w_r = b.op_with(Opcode::Add, &[p1, dhalf]);
    let p1w = b.op_with(Opcode::Clip, &[p1w_r]);
    let q1w_r = b.op_with(Opcode::Sub, &[q1, dhalf]);
    let q1w = b.op_with(Opcode::Clip, &[q1w_r]);

    // Strong filter (bS = 4), all six outputs.
    // p0' = (p2 + 2p1 + 2p0 + 2q0 + q1 + 4) >> 3
    let s_a = b.op_with(Opcode::Add, &[p1, p0]);
    let s_b = b.op_with(Opcode::Add, &[s_a, q0]);
    let s_b2 = b.op_with(Opcode::Shift, &[s_b]);
    let s_c = b.op_with(Opcode::Add, &[p2, q1]);
    let s_d = b.op_with(Opcode::Add, &[s_b2, s_c]);
    let s_e = b.op_with(Opcode::Add, &[s_d, ctx.round]);
    let p0s = b.op_with(Opcode::Shift, &[s_e]);
    // q0' symmetric.
    let t_a = b.op_with(Opcode::Add, &[q1, q0]);
    let t_b = b.op_with(Opcode::Add, &[t_a, p0]);
    let t_b2 = b.op_with(Opcode::Shift, &[t_b]);
    let t_c = b.op_with(Opcode::Add, &[q2, p1]);
    let t_d = b.op_with(Opcode::Add, &[t_b2, t_c]);
    let t_e = b.op_with(Opcode::Add, &[t_d, ctx.round]);
    let q0s = b.op_with(Opcode::Shift, &[t_e]);
    // p1' = (p2 + p1 + p0 + q0 + 2) >> 2, q1' symmetric.
    let u_a = b.op_with(Opcode::Add, &[p2, p1]);
    let u_b = b.op_with(Opcode::Add, &[p0, q0]);
    let u_c = b.op_with(Opcode::Add, &[u_a, u_b]);
    let u_d = b.op_with(Opcode::Add, &[u_c, ctx.round]);
    let p1s = b.op_with(Opcode::Shift, &[u_d]);
    let v_a = b.op_with(Opcode::Add, &[q2, q1]);
    let v_b = b.op_with(Opcode::Add, &[v_a, u_b]);
    let v_c = b.op_with(Opcode::Add, &[v_b, ctx.round]);
    let q1s = b.op_with(Opcode::Shift, &[v_c]);
    // p2' = (2p3 + 3p2 + p1 + p0 + q0 + 4) >> 3, q2' symmetric.
    let w_a = b.op_with(Opcode::Add, &[p3, p2]);
    let w_a2 = b.op_with(Opcode::Shift, &[w_a]);
    let w_b = b.op_with(Opcode::Add, &[w_a2, p2]);
    let w_c = b.op_with(Opcode::Add, &[w_b, s_b]);
    let w_d = b.op_with(Opcode::Add, &[w_c, ctx.round]);
    let p2s = b.op_with(Opcode::Shift, &[w_d]);
    let x_a = b.op_with(Opcode::Add, &[q3, q2]);
    let x_a2 = b.op_with(Opcode::Shift, &[x_a]);
    let x_b = b.op_with(Opcode::Add, &[x_a2, q2]);
    let x_c = b.op_with(Opcode::Add, &[x_b, t_b]);
    let x_d = b.op_with(Opcode::Add, &[x_c, ctx.round]);
    let q2s = b.op_with(Opcode::Shift, &[x_d]);

    // Strong/weak selection, gated by activation and bS.
    let gate = b.op_with(Opcode::Logic, &[act, ctx.bs]);
    let p0o = b.op_with(Opcode::Select, &[gate, p0s, p0w]);
    let q0o = b.op_with(Opcode::Select, &[gate, q0s, q0w]);
    let p1o = b.op_with(Opcode::Select, &[gate, p1s, p1w]);
    let q1o = b.op_with(Opcode::Select, &[gate, q1s, q1w]);
    let p2o = b.op_with(Opcode::Select, &[gate, p2s, p2]);
    let q2o = b.op_with(Opcode::Select, &[gate, q2s, q2]);

    // In-place write-back of the six filtered pixels.
    for out in [p2o, p1o, p0o, q0o, q1o, q2o] {
        b.op_with(Opcode::Store, &[out, addr]);
    }

    b.graph().num_nodes() - before
}

/// Build the `h264deblocking` DDG.
pub fn build() -> Kernel {
    let mut b = DdgBuilder::default();

    // Row pointer with macroblock-boundary wrap: the MIIRec-3 recurrence.
    let base = b.named(Opcode::AddrAdd, "row_ptr++");
    let limit = b.named(Opcode::Const, "mb_end");
    let wrapped = b.named(Opcode::Cmp, "at_mb_end?");
    b.flow(base, wrapped);
    b.flow(limit, wrapped);
    let row = b.named(Opcode::Select, "row_ptr'");
    b.flow(wrapped, row);
    b.carried(row, base, 1);

    // Filter thresholds.
    let alpha = b.named(Opcode::Const, "alpha");
    let beta = b.named(Opcode::Const, "beta");
    let round = b.named(Opcode::Const, "round");
    let tc0 = b.named(Opcode::Const, "tc0");

    // Boundary-strength derivation: motion-vector difference, coded-block
    // flags and mixed-mode checks feeding one bS predicate.
    let mvx = b.named(Opcode::Const, "mv_dx");
    let mvy = b.named(Opcode::Const, "mv_dy");
    let dx = b.op_with(Opcode::AbsDiff, &[mvx, mvy]);
    let dxc = b.op_with(Opcode::Cmp, &[dx, beta]);
    let cbf_p = b.named(Opcode::Const, "cbf_p");
    let cbf_q = b.named(Opcode::Const, "cbf_q");
    let cbf = b.op_with(Opcode::Logic, &[cbf_p, cbf_q]);
    let intra = b.named(Opcode::Const, "is_intra");
    let strong_cond = b.op_with(Opcode::Logic, &[cbf, intra]);
    let bs_hi = b.op_with(Opcode::Select, &[strong_cond]);
    let bs_lo = b.op_with(Opcode::Select, &[dxc]);
    let bs_val = b.op_with(Opcode::MinMax, &[bs_hi, bs_lo]);
    let zero = b.named(Opcode::Const, "0");
    let bs = b.op_with(Opcode::Cmp, &[bs_val, zero]);

    let ctx = SharedCtx {
        row,
        alpha,
        beta,
        round,
        tc0,
        bs,
    };

    let e0 = edge(&mut b, &ctx, 0);
    let e1 = edge(&mut b, &ctx, 1);
    debug_assert_eq!(e0, e1, "both edges have identical structure");

    Kernel {
        name: "h264deblocking",
        ddg: b.finish(),
        expected: Expected {
            n_instr: 214,
            mii_rec: 3,
            mii_res: 4,
            paper_final_mii: 6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;

    #[test]
    fn shape() {
        let k = build();
        assert_eq!(k.ddg.num_nodes(), 214, "{}", k.ddg.summary());
        // 2 edges × (8 loads + 6 stores) = 28 memory ops.
        assert_eq!(k.ddg.count_ops(|o| o.is_memory()), 28);
    }

    #[test]
    fn recurrence_is_three() {
        let k = build();
        assert_eq!(analysis::mii_rec(&k.ddg).unwrap(), 3);
    }

    #[test]
    fn both_edges_present() {
        let k = build();
        // row-wrap + bS hi/lo + 6 strong/weak selections per edge.
        assert_eq!(k.ddg.count_ops(|o| o == Opcode::Select), 3 + 2 * 6);
        assert_eq!(k.ddg.count_ops(|o| o == Opcode::Store), 12);
    }
}
