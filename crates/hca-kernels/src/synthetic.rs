//! Seeded synthetic DDG generators for the scaling and ablation experiments
//! (DESIGN.md S2/A*): layered random DAGs whose shape parameters mimic
//! multimedia loop bodies (bounded fan-in, a configurable fraction of memory
//! operations, optional carried accumulators).

use hca_ddg::{Ddg, DdgBuilder, NodeId, Opcode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters of a synthetic kernel.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Total instruction count (≥ 4).
    pub nodes: usize,
    /// Nodes per dataflow layer (the ILP width of the loop body).
    pub width: usize,
    /// Probability that a node reads a second operand from two layers up
    /// (denser graphs are harder to cluster), in [0, 1].
    pub density: f64,
    /// Fraction of load nodes in the first layer, in [0, 1].
    pub mem_ratio: f64,
    /// Number of loop-carried accumulator chains to thread through.
    pub accumulators: usize,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            nodes: 64,
            width: 8,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 2,
            seed: 0xD5FF,
        }
    }
}

/// Generate a synthetic layered DDG.
///
/// Layer 0 holds loads/constants; every later node consumes one value from
/// the previous layer (uniformly random) and, with probability `density`,
/// a second value from anywhere above; `accumulators` nodes get a carried
/// self-dependence (a reduction pattern). A final store sinks each
/// accumulator so the graph has the source→sink shape of a real loop body.
pub fn generate(spec: &SyntheticSpec) -> Ddg {
    assert!(spec.nodes >= 4, "need at least 4 nodes");
    assert!(spec.width >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = DdgBuilder::default();

    let alu_ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Shift,
        Opcode::Logic,
        Opcode::MinMax,
    ];

    // Budget: reserve accumulators and their stores.
    let accs = spec.accumulators.min(spec.width);
    let body = spec.nodes.saturating_sub(2 * accs).max(2);

    // Layer 0.
    let layer0: Vec<NodeId> = (0..spec.width.min(body))
        .map(|_| {
            if rng.gen_bool(spec.mem_ratio) {
                b.node(Opcode::Load)
            } else {
                b.node(Opcode::Const)
            }
        })
        .collect();
    let mut all: Vec<NodeId> = layer0.clone();
    let mut prev = layer0;

    while all.len() < body {
        let take = spec.width.min(body - all.len());
        let mut layer = Vec::with_capacity(take);
        for _ in 0..take {
            let op = alu_ops[rng.gen_range(0..alu_ops.len())];
            let a = prev[rng.gen_range(0..prev.len())];
            let n = b.op_with(op, &[a]);
            if rng.gen_bool(spec.density) && all.len() > 1 {
                let extra = all[rng.gen_range(0..all.len())];
                if extra != n {
                    b.flow(extra, n);
                }
            }
            layer.push(n);
        }
        all.extend(layer.iter().copied());
        prev = layer;
    }

    // Carried accumulators, each sunk by a store.
    for i in 0..accs {
        let src = prev[i % prev.len()];
        let acc = b.op_with(Opcode::Mac, &[src]);
        b.carried(acc, acc, 1);
        b.op_with(Opcode::Store, &[acc]);
    }

    b.finish()
}

/// A family of specs sweeping the instruction count, for the S2 scaling
/// experiment.
pub fn scaling_family(sizes: &[usize], seed: u64) -> Vec<(usize, Ddg)> {
    sizes
        .iter()
        .map(|&n| {
            (
                n,
                generate(&SyntheticSpec {
                    nodes: n,
                    width: (n / 8).clamp(4, 32),
                    seed: seed ^ n as u64,
                    ..SyntheticSpec::default()
                }),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;

    #[test]
    fn exact_node_count() {
        for n in [8, 32, 64, 257] {
            let g = generate(&SyntheticSpec {
                nodes: n,
                ..SyntheticSpec::default()
            });
            assert_eq!(g.num_nodes(), n, "n={n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.edges(), b.edges());
        let c = generate(&SyntheticSpec {
            seed: 7,
            ..SyntheticSpec::default()
        });
        // Different seed ⇒ (almost surely) different wiring.
        assert!(a.edges() != c.edges());
    }

    #[test]
    fn always_schedulable() {
        for seed in 0..20 {
            let g = generate(&SyntheticSpec {
                nodes: 100,
                seed,
                density: 0.5,
                ..SyntheticSpec::default()
            });
            assert!(analysis::intra_topo_order(&g).is_some(), "seed {seed}");
            assert!(analysis::mii_rec(&g).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn accumulators_pin_recurrence() {
        let g = generate(&SyntheticSpec {
            accumulators: 2,
            ..SyntheticSpec::default()
        });
        // Mac self-loop: latency 2 over distance 1.
        assert_eq!(analysis::mii_rec(&g).unwrap(), 2);
        let g2 = generate(&SyntheticSpec {
            accumulators: 0,
            ..SyntheticSpec::default()
        });
        assert_eq!(analysis::mii_rec(&g2).unwrap(), 1);
    }

    #[test]
    fn scaling_family_sizes() {
        let fam = scaling_family(&[32, 64, 128], 1);
        assert_eq!(fam.len(), 3);
        for (n, g) in fam {
            assert_eq!(g.num_nodes(), n);
        }
    }
}
