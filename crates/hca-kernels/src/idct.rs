//! `idcthor` — the horizontal (row) pass of the 8-point Inverse Discrete
//! Cosine Transform, as used by OpenDivx.
//!
//! One iteration transforms one 8-sample row with the Loeffler fast IDCT
//! dataflow — 11 multiplications and 29 additions/subtractions — followed
//! by 3 descaling shifts:
//!
//! * input samples are loaded through a chained address walk (base pointer
//!   plus 7 increments), outputs stored symmetrically;
//! * the only loop-carried dependences are the two self-incrementing row
//!   pointers (latency 1, distance 1), hence `MIIRec = 1`;
//! * 16 memory operations on 8 DMA ports and 82 instructions on 64 CNs both
//!   give `MIIRes = 2` (Table 1).

use crate::{Expected, Kernel};
use hca_ddg::{DdgBuilder, NodeId, Opcode};

/// Butterfly: returns `(a + b, a − b)`.
fn butterfly(b: &mut DdgBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    let s = b.op_with(Opcode::Add, &[x, y]);
    let d = b.op_with(Opcode::Sub, &[x, y]);
    (s, d)
}

/// Loeffler rotation by angle k: 3 multiplies + 3 adds
/// (`t = c·(x+y); u = t + (s−c)·y; v = t − (s+c)·x` factorisation).
fn rotation(b: &mut DdgBuilder, x: NodeId, y: NodeId, cs: NodeId) -> (NodeId, NodeId) {
    let xy = b.op_with(Opcode::Add, &[x, y]);
    let t = b.op_with(Opcode::Mul, &[xy, cs]);
    let my = b.op_with(Opcode::Mul, &[y, cs]);
    let mx = b.op_with(Opcode::Mul, &[x, cs]);
    let u = b.op_with(Opcode::Add, &[t, my]);
    let v = b.op_with(Opcode::Sub, &[t, mx]);
    (u, v)
}

/// Build the `idcthor` DDG.
pub fn build() -> Kernel {
    let mut b = DdgBuilder::default();

    // Input pointer walk: base++ (carried) then a 7-step chain.
    let in_base = b.named(Opcode::AddrAdd, "in_ptr++");
    b.carried(in_base, in_base, 1);
    let mut addr = in_base;
    let mut x = Vec::with_capacity(8);
    x.push(b.op_with(Opcode::Load, &[addr]));
    for _ in 0..7 {
        addr = b.op_with(Opcode::AddrAdd, &[addr]);
        x.push(b.op_with(Opcode::Load, &[addr]));
    }

    // Cosine constants (7 distinct in the Loeffler graph).
    let c: Vec<NodeId> = (1..=7)
        .map(|k| b.named(Opcode::Const, format!("cos{k}")))
        .collect();

    // Even part: x0, x4, x2, x6 → e0..e3  (12 ops).
    let (t0, t1) = butterfly(&mut b, x[0], x[4]);
    let (t2, t3) = rotation(&mut b, x[2], x[6], c[0]);
    let (e0, e3) = butterfly(&mut b, t0, t2);
    let (e1, e2) = butterfly(&mut b, t1, t3);

    // Odd part: x1, x7, x5, x3 → o0..o3  (20 ops).
    let (o0, o3) = rotation(&mut b, x[1], x[7], c[1]);
    let (o1, o2) = rotation(&mut b, x[5], x[3], c[2]);
    let (p0, p1) = butterfly(&mut b, o0, o1);
    let (p3, p2) = butterfly(&mut b, o3, o2);
    let q1 = b.op_with(Opcode::Mul, &[p1, c[3]]); // √2 scale
    let q2 = b.op_with(Opcode::Mul, &[p2, c[4]]);
    let (r1, r2) = butterfly(&mut b, q1, q2);

    // Final butterflies: 8 ops.
    let (y0, y7) = butterfly(&mut b, e0, p0);
    let (y1, y6) = butterfly(&mut b, e1, r1);
    let (y2, y5) = butterfly(&mut b, e2, r2);
    let (y3, y4) = butterfly(&mut b, e3, p3);

    // Descale: 3 shared shifts on the three butterfly rails used twice each
    // (the fixed-point scaling the integer IDCT performs before write-back).
    let s0 = b.op_with(Opcode::Shift, &[y0]);
    let s1 = b.op_with(Opcode::Shift, &[y1]);
    let s2 = b.op_with(Opcode::Shift, &[y2]);
    let outs = [s0, s1, s2, y3, y4, y5, y6, y7];

    // Output pointer walk + stores.
    let out_base = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out_base, out_base, 1);
    let mut oaddr = out_base;
    b.op_with(Opcode::Store, &[outs[0], oaddr]);
    for &o in &outs[1..] {
        oaddr = b.op_with(Opcode::AddrAdd, &[oaddr]);
        b.op_with(Opcode::Store, &[o, oaddr]);
    }

    let _ = (y3, c[5], c[6]); // rails stored unscaled; two spare constants
                              // document the full cosine table

    Kernel {
        name: "idcthor",
        ddg: b.finish(),
        expected: Expected {
            n_instr: 82,
            mii_rec: 1,
            mii_res: 2,
            paper_final_mii: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;

    #[test]
    fn shape() {
        let k = build();
        assert_eq!(k.ddg.num_nodes(), 82, "{}", k.ddg.summary());
        assert_eq!(k.ddg.count_ops(|o| o.is_memory()), 16);
        // Loeffler: 11 multiplies.
        assert_eq!(k.ddg.count_ops(|o| o == Opcode::Mul), 11);
    }

    #[test]
    fn fully_parallel_across_iterations() {
        let k = build();
        assert_eq!(analysis::mii_rec(&k.ddg).unwrap(), 1);
    }
}
