//! Priority lists for the Space Exploration Engine.
//!
//! The SEE (paper §3) "picks a new DDG node at each step from a priority list
//! of unassigned ones". The order matters a great deal for beam-search
//! quality; this module provides the classical choices so that the ablation
//! benches (`DESIGN.md` A2) can compare them.

use crate::analysis::DdgAnalysis;
use crate::graph::{Ddg, NodeId};

/// Which static order the SEE consumes unassigned nodes in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PriorityPolicy {
    /// Decreasing ASAP depth ties broken by height: roughly source-to-sink
    /// dataflow order. The default — keeps the exploration frontier local,
    /// which is what makes a limited beam effective.
    DataflowOrder,
    /// Decreasing height (distance to sink): critical-path first.
    HeightFirst,
    /// Increasing slack: critical nodes first, independent ones later.
    SlackFirst,
    /// Decreasing connectivity (total degree): hub nodes placed early.
    ConnectivityFirst,
    /// Decreasing count of operands produced *outside* the working set:
    /// nodes that must bind scarce input ports to external wires are placed
    /// while those ports are still free. Ties broken by dataflow order.
    /// Particularly effective on leaf sub-problems of a hierarchical
    /// machine, where every external operand claims one of a CN's two
    /// input wires.
    ExternalOperandsFirst,
    /// Plain creation order (baseline for ablation).
    CreationOrder,
}

impl PriorityPolicy {
    /// All policies, for sweeps.
    pub fn all() -> &'static [PriorityPolicy] {
        &[
            PriorityPolicy::DataflowOrder,
            PriorityPolicy::HeightFirst,
            PriorityPolicy::SlackFirst,
            PriorityPolicy::ConnectivityFirst,
            PriorityPolicy::ExternalOperandsFirst,
            PriorityPolicy::CreationOrder,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PriorityPolicy::DataflowOrder => "dataflow",
            PriorityPolicy::HeightFirst => "height",
            PriorityPolicy::SlackFirst => "slack",
            PriorityPolicy::ConnectivityFirst => "connectivity",
            PriorityPolicy::ExternalOperandsFirst => "external-ops",
            PriorityPolicy::CreationOrder => "creation",
        }
    }
}

/// A computed priority order over a set of nodes.
#[derive(Clone, Debug)]
pub struct PriorityOrder {
    nodes: Vec<NodeId>,
}

impl PriorityOrder {
    /// Order the nodes of `working_set` (or the whole DDG when `None`)
    /// according to `policy`.
    ///
    /// All orders are made deterministic by a final `NodeId` tie-break.
    pub fn compute(
        ddg: &Ddg,
        analysis: &DdgAnalysis,
        working_set: Option<&[NodeId]>,
        policy: PriorityPolicy,
    ) -> Self {
        let mut nodes: Vec<NodeId> = match working_set {
            Some(ws) => ws.to_vec(),
            None => ddg.node_ids().collect(),
        };
        let lv = &analysis.levels;
        match policy {
            PriorityPolicy::DataflowOrder => {
                nodes.sort_by_key(|&n| (lv.asap[n.index()], u32::MAX - lv.height[n.index()], n.0));
            }
            PriorityPolicy::HeightFirst => {
                nodes.sort_by_key(|&n| (u32::MAX - lv.height[n.index()], n.0));
            }
            PriorityPolicy::SlackFirst => {
                nodes.sort_by_key(|&n| (lv.slack(n), lv.asap[n.index()], n.0));
            }
            PriorityPolicy::ConnectivityFirst => {
                nodes.sort_by_key(|&n| {
                    let deg = ddg.in_degree(n) + ddg.out_degree(n);
                    (usize::MAX - deg, n.index())
                });
            }
            PriorityPolicy::ExternalOperandsFirst => {
                let in_ws: rustc_hash::FxHashSet<NodeId> = nodes.iter().copied().collect();
                nodes.sort_by_key(|&n| {
                    let ext = ddg
                        .pred_edges(n)
                        .filter(|(_, e)| !in_ws.contains(&e.src))
                        .count();
                    (usize::MAX - ext, lv.asap[n.index()] as usize, n.index())
                });
            }
            PriorityPolicy::CreationOrder => nodes.sort_by_key(|&n| n.0),
        }
        PriorityOrder { nodes }
    }

    /// The ordered node list.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::{LatencyModel, Opcode};

    fn chain_and_leaf() -> (Ddg, [NodeId; 4]) {
        // a -> b -> c, plus isolated leaf d
        let mut bl = DdgBuilder::new(LatencyModel::unit());
        let a = bl.node(Opcode::Add);
        let b = bl.node(Opcode::Add);
        let c = bl.node(Opcode::Add);
        let d = bl.node(Opcode::Add);
        bl.flow(a, b);
        bl.flow(b, c);
        (bl.finish(), [a, b, c, d])
    }

    #[test]
    fn dataflow_order_is_topological() {
        let (g, [a, b, c, _]) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(&g, &an, None, PriorityPolicy::DataflowOrder);
        let pos = |n: NodeId| ord.nodes().iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn height_first_puts_chain_head_first() {
        let (g, [a, _, c, d]) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(&g, &an, None, PriorityPolicy::HeightFirst);
        assert_eq!(ord.nodes()[0], a); // height 2
        let pos = |n: NodeId| ord.nodes().iter().position(|&x| x == n).unwrap();
        assert!(pos(c) <= 3 && pos(d) <= 3);
    }

    #[test]
    fn slack_first_puts_critical_path_first() {
        let (g, [_, _, _, d]) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(&g, &an, None, PriorityPolicy::SlackFirst);
        // d has maximal slack (it floats freely), so it must come last.
        assert_eq!(*ord.nodes().last().unwrap(), d);
    }

    #[test]
    fn connectivity_first_puts_hub_first() {
        let (g, [_, b, _, _]) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(&g, &an, None, PriorityPolicy::ConnectivityFirst);
        assert_eq!(ord.nodes()[0], b); // degree 2
    }

    #[test]
    fn working_set_restricts_order() {
        let (g, [a, _, c, _]) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(&g, &an, Some(&[c, a]), PriorityPolicy::CreationOrder);
        assert_eq!(ord.nodes(), &[a, c]);
    }

    #[test]
    fn external_operands_first() {
        // b and c consume the external value a; d is internal-only.
        let mut bl = DdgBuilder::new(LatencyModel::unit());
        let a = bl.node(Opcode::Add); // external (not in WS)
        let b = bl.node(Opcode::Add);
        let c = bl.node(Opcode::Add);
        let d = bl.node(Opcode::Add);
        bl.flow(a, b);
        bl.flow(a, c);
        bl.flow(b, d);
        let g = bl.finish();
        let an = DdgAnalysis::compute(&g).unwrap();
        let ord = PriorityOrder::compute(
            &g,
            &an,
            Some(&[b, c, d]),
            PriorityPolicy::ExternalOperandsFirst,
        );
        let pos = |n: NodeId| ord.nodes().iter().position(|&x| x == n).unwrap();
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn all_policies_are_permutations() {
        let (g, _) = chain_and_leaf();
        let an = DdgAnalysis::compute(&g).unwrap();
        for &p in PriorityPolicy::all() {
            let ord = PriorityOrder::compute(&g, &an, None, p);
            let mut ids: Vec<u32> = ord.nodes().iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3], "policy {}", p.name());
        }
    }
}
