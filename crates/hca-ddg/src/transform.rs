//! DDG transformations — currently loop unrolling.
//!
//! Unrolling by `f` replicates the loop body `f` times and rewires the
//! loop-carried dependences: an edge of distance `d` from copy `k`'s
//! perspective reaches back `d` *original* iterations, i.e. body copy
//! `(k − d) mod f` at unrolled distance `ceil((d − k) / f)` (0 when the
//! producer copy sits in the same unrolled iteration). Unrolling exposes
//! more intra-iteration parallelism to the cluster assignment at the price
//! of a proportionally larger working set — the classical ILP lever the
//! paper's kernels would be given by a production front-end.

use crate::graph::{Ddg, NodeId};

/// Unroll `ddg` by `factor` (≥ 1). Nodes of body copy `k` are appended in
/// copy order, so copy `k`'s clone of original node `n` has id
/// `k · N + n` where `N` is the original node count.
pub fn unroll(ddg: &Ddg, factor: u32) -> Ddg {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let f = i64::from(factor);
    let n = ddg.num_nodes();
    let mut out = Ddg::new();
    for k in 0..factor {
        for v in ddg.node_ids() {
            let node = ddg.node(v);
            let name = match (&node.name, factor) {
                (Some(s), fac) if fac > 1 => Some(format!("{s}#{k}")),
                (Some(s), _) => Some(s.clone()),
                (None, _) => None,
            };
            out.add_node(node.op, name);
        }
    }
    let clone_id = |v: NodeId, k: i64| NodeId(v.0 + (k as u32) * (n as u32));
    for k in 0..i64::from(factor) {
        for e in ddg.edges() {
            // Producer sits d original iterations back from copy k.
            let q = k - i64::from(e.distance);
            let new_dist = if q >= 0 { 0 } else { (-q + f - 1) / f };
            let src_copy = q.rem_euclid(f);
            out.add_edge(
                clone_id(e.src, src_copy),
                clone_id(e.dst, k),
                e.latency,
                u32::try_from(new_dist).expect("distance fits"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::DdgBuilder;
    use crate::op::Opcode;

    fn mac_loop() -> Ddg {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::AddrAdd);
        b.carried(p, p, 1);
        let x = b.op_with(Opcode::Load, &[p]);
        let acc = b.op_with(Opcode::Mac, &[x]);
        b.carried(acc, acc, 1);
        b.op_with(Opcode::Store, &[acc, p]);
        b.finish()
    }

    #[test]
    fn factor_one_is_identity_shaped() {
        let g = mac_loop();
        let u = unroll(&g, 1);
        assert_eq!(u.num_nodes(), g.num_nodes());
        assert_eq!(u.num_edges(), g.num_edges());
        assert_eq!(
            analysis::mii_rec(&u).unwrap(),
            analysis::mii_rec(&g).unwrap()
        );
    }

    #[test]
    fn node_and_edge_counts_scale() {
        let g = mac_loop();
        let u = unroll(&g, 4);
        assert_eq!(u.num_nodes(), 4 * g.num_nodes());
        assert_eq!(u.num_edges(), 4 * g.num_edges());
        // Still a schedulable loop body.
        assert!(analysis::intra_topo_order(&u).is_some());
    }

    #[test]
    fn recurrence_mii_scales_with_factor() {
        // MIIRec multiplies by f, so the per-original-iteration rate is
        // preserved: II_unrolled / f == II_original.
        let g = mac_loop();
        let base = analysis::mii_rec(&g).unwrap(); // mac: latency 2 / dist 1
        for f in [2u32, 3, 5] {
            let u = unroll(&g, f);
            assert_eq!(analysis::mii_rec(&u).unwrap(), base * f, "factor {f}");
        }
    }

    #[test]
    fn distance_one_becomes_intra_edge_between_copies() {
        // acc(copy0) → acc(copy1) must be an intra-iteration edge; only the
        // wrap-around copy(f−1) → copy0 stays carried.
        let g = mac_loop();
        let n = g.num_nodes() as u32;
        let u = unroll(&g, 2);
        let acc0 = NodeId(2);
        let acc1 = NodeId(2 + n);
        let intra = u
            .succ_edges(acc0)
            .any(|(_, e)| e.dst == acc1 && e.distance == 0);
        assert!(intra, "copy0 → copy1 accumulator edge should be intra");
        let wrap = u
            .succ_edges(acc1)
            .any(|(_, e)| e.dst == acc0 && e.distance == 1);
        assert!(wrap, "copy1 → copy0 wraps with distance 1");
    }

    #[test]
    fn long_distances_partition_correctly() {
        // distance 3 unrolled by 2: copy0 reads original iteration 2i−3 =
        // copy 1 of unrolled iteration i−2 (q = −3 → src copy 1, dist 2);
        // copy1 reads 2i−2 = copy 0 of iteration i−1 (q = −2 → copy 0,
        // dist 1).
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        g.add_edge(a, a, 1, 3);
        let u = unroll(&g, 2);
        let a0 = NodeId(0);
        let a1 = NodeId(1);
        let e_into_0: Vec<_> = u.pred_edges(a0).map(|(_, e)| e).collect();
        assert_eq!(e_into_0.len(), 1);
        assert_eq!(e_into_0[0].src, a1);
        assert_eq!(e_into_0[0].distance, 2);
        let e_into_1: Vec<_> = u.pred_edges(a1).map(|(_, e)| e).collect();
        assert_eq!(e_into_1[0].src, a0);
        assert_eq!(e_into_1[0].distance, 1);
    }

    #[test]
    fn names_get_copy_suffix() {
        let mut b = DdgBuilder::default();
        b.named(Opcode::Add, "x");
        let g = b.finish();
        let u = unroll(&g, 2);
        assert_eq!(u.node(NodeId(0)).name.as_deref(), Some("x#0"));
        assert_eq!(u.node(NodeId(1)).name.as_deref(), Some("x#1"));
    }
}
