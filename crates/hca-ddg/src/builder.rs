//! Ergonomic DDG construction.
//!
//! `DdgBuilder` wires latencies automatically from a [`LatencyModel`]: an edge
//! from producer `p` gets `model.of(op(p))` unless overridden. This keeps the
//! kernel builders in `hca-kernels` declarative — they state *dataflow*, the
//! builder states *timing*.

use crate::graph::{Ddg, EdgeId, NodeId};
use crate::op::{LatencyModel, Opcode};

/// Builder for [`Ddg`] with automatic latency assignment.
#[derive(Clone, Debug)]
pub struct DdgBuilder {
    ddg: Ddg,
    model: LatencyModel,
}

impl Default for DdgBuilder {
    fn default() -> Self {
        Self::new(LatencyModel::default())
    }
}

impl DdgBuilder {
    /// Builder using the given latency model.
    pub fn new(model: LatencyModel) -> Self {
        DdgBuilder {
            ddg: Ddg::new(),
            model,
        }
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Add an unnamed node.
    pub fn node(&mut self, op: Opcode) -> NodeId {
        self.ddg.add_node(op, None)
    }

    /// Add a named node.
    pub fn named(&mut self, op: Opcode, name: impl Into<String>) -> NodeId {
        self.ddg.add_node(op, Some(name.into()))
    }

    /// Add an intra-iteration flow edge; latency taken from the model.
    pub fn flow(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        let lat = self.model.of(self.ddg.node(src).op);
        self.ddg.add_edge(src, dst, lat, 0)
    }

    /// Add a loop-carried edge with the given iteration distance.
    pub fn carried(&mut self, src: NodeId, dst: NodeId, distance: u32) -> EdgeId {
        assert!(distance > 0, "carried edge needs distance ≥ 1");
        let lat = self.model.of(self.ddg.node(src).op);
        self.ddg.add_edge(src, dst, lat, distance)
    }

    /// Add an edge with explicit latency and distance.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, latency: u32, distance: u32) -> EdgeId {
        self.ddg.add_edge(src, dst, latency, distance)
    }

    /// Convenience: node with flow edges from every listed operand.
    pub fn op_with(&mut self, op: Opcode, operands: &[NodeId]) -> NodeId {
        let n = self.node(op);
        for &src in operands {
            self.flow(src, n);
        }
        n
    }

    /// Convenience: a left-to-right reduction tree (binary) of `op` over the
    /// inputs; returns the root. Panics on empty input; a single input is
    /// returned unchanged.
    ///
    /// A balanced tree keeps the critical path logarithmic — what a real
    /// front-end would emit for an associative reduction.
    pub fn reduce_tree(&mut self, op: Opcode, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "reduce_tree over no inputs");
        let mut layer: Vec<NodeId> = inputs.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if let [a, b] = *pair {
                    next.push(self.op_with(op, &[a, b]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Convenience: a serial accumulation chain `acc = op(acc, x)` over the
    /// inputs, starting from `init`; returns the final accumulator.
    pub fn reduce_chain(&mut self, op: Opcode, init: NodeId, inputs: &[NodeId]) -> NodeId {
        let mut acc = init;
        for &x in inputs {
            acc = self.op_with(op, &[acc, x]);
        }
        acc
    }

    /// Finish and return the graph.
    pub fn finish(self) -> Ddg {
        self.ddg
    }

    /// Read-only access to the graph under construction.
    pub fn graph(&self) -> &Ddg {
        &self.ddg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{LatencyModel, Opcode};

    #[test]
    fn flow_edges_take_producer_latency() {
        let mut b = DdgBuilder::default();
        let ld = b.node(Opcode::Load);
        let add = b.node(Opcode::Add);
        let e = b.flow(ld, add);
        let g = b.finish();
        assert_eq!(g.edge(e).latency, LatencyModel::default().load);
        assert_eq!(g.edge(e).distance, 0);
    }

    #[test]
    fn carried_edges_keep_distance() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Mac);
        let e = b.carried(x, x, 2);
        let g = b.finish();
        assert_eq!(g.edge(e).distance, 2);
        assert_eq!(g.edge(e).latency, 2); // mac = mul path
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn carried_rejects_zero_distance() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        b.carried(x, x, 0);
    }

    #[test]
    fn op_with_wires_all_operands() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        let y = b.node(Opcode::Const);
        let s = b.op_with(Opcode::Add, &[x, y]);
        let g = b.finish();
        assert_eq!(g.in_degree(s), 2);
        assert_eq!(g.preds(s).collect::<Vec<_>>(), vec![x, y]);
    }

    #[test]
    fn reduce_tree_is_logarithmic() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let leaves: Vec<_> = (0..8).map(|_| b.node(Opcode::Const)).collect();
        let root = b.reduce_tree(Opcode::Add, &leaves);
        let g = b.finish();
        // 8 leaves -> 7 internal adds; depth from any leaf to root is 3.
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.in_degree(root), 2);
        let adds = g.count_ops(|o| o == Opcode::Add);
        assert_eq!(adds, 7);
    }

    #[test]
    fn reduce_tree_odd_input_count() {
        let mut b = DdgBuilder::default();
        let leaves: Vec<_> = (0..5).map(|_| b.node(Opcode::Const)).collect();
        b.reduce_tree(Opcode::Add, &leaves);
        let g = b.finish();
        assert_eq!(g.count_ops(|o| o == Opcode::Add), 4);
    }

    #[test]
    fn reduce_tree_single_input_passthrough() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Const);
        let r = b.reduce_tree(Opcode::Add, &[x]);
        assert_eq!(r, x);
        assert_eq!(b.finish().num_nodes(), 1);
    }

    #[test]
    fn reduce_chain_is_serial() {
        let mut b = DdgBuilder::default();
        let init = b.node(Opcode::Const);
        let xs: Vec<_> = (0..4).map(|_| b.node(Opcode::Const)).collect();
        let last = b.reduce_chain(Opcode::Add, init, &xs);
        let g = b.finish();
        assert_eq!(g.count_ops(|o| o == Opcode::Add), 4);
        assert_eq!(g.in_degree(last), 2);
        // The chain gives a linear path of 4 adds.
        let mut depth = 0;
        let mut cur = last;
        while let Some(p) = g.preds(cur).find(|&p| g.node(p).op == Opcode::Add) {
            depth += 1;
            cur = p;
        }
        assert_eq!(depth, 3);
    }
}
