//! Instruction opcodes, resource classes and the latency model.
//!
//! The DSPFabric computation node (CN) of the paper is a single-issue
//! pipelined machine exposing an ALU and an Address Generator (AG) towards
//! the programmable DMA (§2.2, §4). Every DDG instruction therefore consumes
//! one issue slot on its CN and, depending on its opcode, one ALU or one AG
//! resource. Memory traffic itself does not travel on the inter-cluster
//! network: an AG op posts a request to the DMA, whose port count bounds the
//! number of *simultaneous* requests (8 in the paper's running example).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse functional-unit class an instruction occupies on its cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Arithmetic/logic unit: every scalar computation.
    Alu,
    /// Address generator towards the programmable DMA (loads & stores).
    AddrGen,
    /// Inter-cluster receive primitive (occupies an issue slot only).
    Receive,
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceClass::Alu => write!(f, "ALU"),
            ResourceClass::AddrGen => write!(f, "AG"),
            ResourceClass::Receive => write!(f, "RCV"),
        }
    }
}

/// The operation performed by a DDG node.
///
/// The set mirrors what the multimedia kernels of the paper's evaluation
/// (2-D FIR, IDCT, MPEG-2 interpolation, H.264 deblocking) actually need,
/// plus the machine-inserted primitives (`Recv`, `Route`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Fused multiply-accumulate (`a*b + c`).
    Mac,
    /// Arithmetic/logic shift.
    Shift,
    /// Bitwise and/or/xor.
    Logic,
    /// Min/max selection (used by clipping and deblocking).
    MinMax,
    /// Saturating clip to a range (e.g. \[0,255\] pixel clamp).
    Clip,
    /// Absolute difference (`|a-b|`, deblocking threshold tests).
    AbsDiff,
    /// Compare producing a predicate.
    Cmp,
    /// Predicated select (`p ? a : b`).
    Select,
    /// Load from memory through the DMA (consumes an AG resource).
    Load,
    /// Store to memory through the DMA (consumes an AG resource).
    Store,
    /// Address computation feeding a Load/Store chain.
    AddrAdd,
    /// Constant / immediate materialisation.
    Const,
    /// Loop induction update (loop-carried by construction).
    Induction,
    /// Inter-cluster receive primitive inserted by the HCA post-pass (§4.1).
    Recv,
    /// Route-through copy inserted by the Route Allocator (§3, Fig. 6b):
    /// an identity op whose only purpose is forwarding a value.
    Route,
}

impl Opcode {
    /// Functional-unit class this opcode occupies.
    #[inline]
    pub fn resource_class(self) -> ResourceClass {
        match self {
            Opcode::Load | Opcode::Store | Opcode::AddrAdd => ResourceClass::AddrGen,
            Opcode::Recv => ResourceClass::Receive,
            _ => ResourceClass::Alu,
        }
    }

    /// True when the op posts a request to the programmable DMA.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// True for primitives the toolchain inserts (never present in a source DDG).
    #[inline]
    pub fn is_machine_inserted(self) -> bool {
        matches!(self, Opcode::Recv | Opcode::Route)
    }

    /// Short mnemonic for reports and graphviz dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Mac => "mac",
            Opcode::Shift => "shf",
            Opcode::Logic => "log",
            Opcode::MinMax => "mnx",
            Opcode::Clip => "clp",
            Opcode::AbsDiff => "abd",
            Opcode::Cmp => "cmp",
            Opcode::Select => "sel",
            Opcode::Load => "ld",
            Opcode::Store => "st",
            Opcode::AddrAdd => "agu",
            Opcode::Const => "cst",
            Opcode::Induction => "ind",
            Opcode::Recv => "rcv",
            Opcode::Route => "rt",
        }
    }

    /// All opcodes a *source* DDG may contain (excludes machine-inserted ones).
    pub fn source_opcodes() -> &'static [Opcode] {
        &[
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Mac,
            Opcode::Shift,
            Opcode::Logic,
            Opcode::MinMax,
            Opcode::Clip,
            Opcode::AbsDiff,
            Opcode::Cmp,
            Opcode::Select,
            Opcode::Load,
            Opcode::Store,
            Opcode::AddrAdd,
            Opcode::Const,
            Opcode::Induction,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Per-opcode producer latency: cycles after issue at which the result is
/// available to a same-cluster consumer.
///
/// The defaults encode the assumptions documented in `DESIGN.md` §2: single
/// cycle ALU, 2-cycle multiplier path, 8-cycle DMA load (FIFO-buffered).
/// Inter-cluster transport adds its own delay on top (the copy latency,
/// owned by the architecture model, not by this table).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Simple ALU operations (add/sub/shift/logic/minmax/clip/cmp/select/absdiff).
    pub alu: u32,
    /// Multiplier path (mul, mac).
    pub mul: u32,
    /// DMA load round-trip as seen by the consumer of the loaded value.
    pub load: u32,
    /// Store: latency towards dependent ops (memory ordering edges).
    pub store: u32,
    /// Address generation.
    pub addr: u32,
    /// Constant materialisation.
    pub konst: u32,
    /// Receive primitive: cycles between issue of `rcv` and availability of
    /// the value in the input buffer region of the register file.
    pub recv: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 1,
            mul: 2,
            load: 8,
            store: 1,
            addr: 1,
            konst: 1,
            recv: 1,
        }
    }
}

impl LatencyModel {
    /// Latency of `op`'s produced value.
    #[inline]
    pub fn of(&self, op: Opcode) -> u32 {
        match op {
            Opcode::Mul | Opcode::Mac => self.mul,
            Opcode::Load => self.load,
            Opcode::Store => self.store,
            Opcode::AddrAdd => self.addr,
            Opcode::Const => self.konst,
            Opcode::Recv => self.recv,
            Opcode::Route => self.alu,
            _ => self.alu,
        }
    }

    /// A unit-latency model: useful in tests where latency arithmetic must be
    /// easy to check by hand.
    pub fn unit() -> Self {
        LatencyModel {
            alu: 1,
            mul: 1,
            load: 1,
            store: 1,
            addr: 1,
            konst: 1,
            recv: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_classes_are_consistent() {
        assert_eq!(Opcode::Add.resource_class(), ResourceClass::Alu);
        assert_eq!(Opcode::Mac.resource_class(), ResourceClass::Alu);
        assert_eq!(Opcode::Load.resource_class(), ResourceClass::AddrGen);
        assert_eq!(Opcode::Store.resource_class(), ResourceClass::AddrGen);
        assert_eq!(Opcode::AddrAdd.resource_class(), ResourceClass::AddrGen);
        assert_eq!(Opcode::Recv.resource_class(), ResourceClass::Receive);
    }

    #[test]
    fn memory_ops_flagged() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::AddrAdd.is_memory());
        assert!(!Opcode::Mac.is_memory());
    }

    #[test]
    fn machine_inserted_ops_not_in_source_set() {
        for &op in Opcode::source_opcodes() {
            assert!(!op.is_machine_inserted(), "{op} is machine-inserted");
        }
        assert!(Opcode::Recv.is_machine_inserted());
        assert!(Opcode::Route.is_machine_inserted());
    }

    #[test]
    fn default_latencies() {
        let m = LatencyModel::default();
        assert_eq!(m.of(Opcode::Add), 1);
        assert_eq!(m.of(Opcode::Mul), 2);
        assert_eq!(m.of(Opcode::Mac), 2);
        assert_eq!(m.of(Opcode::Load), 8);
        assert_eq!(m.of(Opcode::Recv), 1);
    }

    #[test]
    fn unit_model_is_all_ones() {
        let m = LatencyModel::unit();
        for &op in Opcode::source_opcodes() {
            assert_eq!(m.of(op), 1, "{op}");
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::source_opcodes() {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }
}
