//! Graphviz export of DDGs — used by the examples and handy when debugging
//! clusterisations (nodes can be coloured per cluster).

use crate::graph::{Ddg, NodeId};
use std::fmt::Write as _;

/// Render `ddg` in graphviz `dot` syntax.
///
/// `cluster_of` may return a cluster tag per node; nodes of the same tag get
/// the same fill colour (cycled from a small palette) and the label shows the
/// tag. Loop-carried edges are drawn dashed and annotated `[d=distance]`.
pub fn to_dot(ddg: &Ddg, cluster_of: impl Fn(NodeId) -> Option<usize>) -> String {
    const PALETTE: [&str; 8] = [
        "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
    ];
    let mut s = String::new();
    s.push_str("digraph ddg {\n  node [shape=box, style=filled, fillcolor=white];\n");
    for n in ddg.node_ids() {
        let node = ddg.node(n);
        let label = match &node.name {
            Some(name) => format!("{}\\n{}", node.op, name),
            None => format!("{}\\n{}", node.op, n),
        };
        match cluster_of(n) {
            Some(c) => {
                let _ = writeln!(
                    s,
                    "  {} [label=\"{label}\\n@{c}\", fillcolor=\"{}\"];",
                    n.0,
                    PALETTE[c % PALETTE.len()]
                );
            }
            None => {
                let _ = writeln!(s, "  {} [label=\"{label}\"];", n.0);
            }
        }
    }
    for e in ddg.edges() {
        if e.distance > 0 {
            let _ = writeln!(
                s,
                "  {} -> {} [style=dashed, label=\"d={}\"];",
                e.src.0, e.dst.0, e.distance
            );
        } else {
            let _ = writeln!(s, "  {} -> {};", e.src.0, e.dst.0);
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::Opcode;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DdgBuilder::default();
        let x = b.named(Opcode::Load, "px");
        let y = b.node(Opcode::Add);
        b.flow(x, y);
        b.carried(y, y, 1);
        let g = b.finish();
        let dot = to_dot(&g, |_| None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("px"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("d=1"));
    }

    #[test]
    fn dot_colors_clusters() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Add);
        b.flow(x, y);
        let g = b.finish();
        let dot = to_dot(&g, |n| Some(n.index()));
        assert!(dot.contains("@0"));
        assert!(dot.contains("@1"));
        assert!(dot.contains("fillcolor=\"#a6cee3\""));
    }
}
