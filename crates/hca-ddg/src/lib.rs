//! # hca-ddg — Data Dependency Graph substrate
//!
//! The Data Dependency Graph (DDG) is the compiler-side input of the whole
//! Hierarchical Cluster Assignment (HCA) pipeline: its nodes are the
//! instructions of an innermost multimedia loop body, its edges are data
//! dependences annotated with a **latency** (cycles the consumer must wait
//! after the producer issues) and an iteration **distance** (0 for
//! intra-iteration flow dependences, ≥ 1 for loop-carried recurrences).
//!
//! Besides graph storage and construction this crate provides the analyses
//! every later pass relies on:
//!
//! * topological ordering of the intra-iteration subgraph,
//! * ASAP / ALAP levels and slack (used by the Space Exploration Engine's
//!   priority lists),
//! * strongly connected components (Tarjan) over the full graph,
//! * **MIIRec** — the recurrence-constrained Minimum Initiation Interval,
//!   computed exactly via a binary search over candidate II values with a
//!   positive-cycle test (Bellman–Ford over edge weights
//!   `latency − II · distance`), as required by iterative modulo scheduling
//!   (Rau, MICRO '94) and by the paper's §4.2 cost model.
//!
//! The graph is deliberately index-based (`NodeId` / `EdgeId` are `u32`
//! newtypes) with contiguous adjacency storage, following the Rust
//! performance-book guidance for hot, oft-traversed structures.
//!
//! ```
//! use hca_ddg::{DdgBuilder, DdgAnalysis, Opcode};
//!
//! // A dot-product body: acc = mac(acc, a[i] * b[i]).
//! let mut b = DdgBuilder::default();
//! let pa = b.named(Opcode::AddrAdd, "a++");
//! b.carried(pa, pa, 1);
//! let a = b.op_with(Opcode::Load, &[pa]);
//! let acc = b.op_with(Opcode::Mac, &[a]);
//! b.carried(acc, acc, 1); // the reduction recurrence
//! let ddg = b.finish();
//!
//! let analysis = DdgAnalysis::compute(&ddg).unwrap();
//! assert_eq!(analysis.mii_rec, 2); // mac latency 2 over distance 1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod op;
pub mod priority;
pub mod transform;

pub use analysis::{AsapAlap, DdgAnalysis};
pub use builder::DdgBuilder;
pub use graph::{Ddg, DdgEdge, DdgNode, EdgeId, NodeId};
pub use op::{LatencyModel, Opcode, ResourceClass};
pub use priority::{PriorityOrder, PriorityPolicy};
pub use transform::unroll;
