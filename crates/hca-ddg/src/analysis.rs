//! Graph analyses: topological order, ASAP/ALAP levels, SCCs, MIIRec.
//!
//! `MIIRec` — the recurrence-constrained minimum initiation interval — is the
//! largest `ceil(Σ latency / Σ distance)` over all dependence cycles (Rau,
//! MICRO '94; used as the data-constraint term of the paper's §4.2 cost
//! model). We compute it exactly: binary-search the candidate II and test
//! whether a cycle of positive weight exists under edge weights
//! `latency − II · distance` (Bellman–Ford style relaxation).

use crate::graph::{Ddg, NodeId};
use rustc_hash::FxHashSet;
use std::fmt;

/// Why a DDG is not analysable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdgError {
    /// A dependence cycle exists whose total iteration distance is zero:
    /// the loop body can never be scheduled.
    ZeroDistanceCycle,
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::ZeroDistanceCycle => {
                write!(f, "dependence cycle with zero iteration distance")
            }
        }
    }
}

impl std::error::Error for DdgError {}

/// ASAP / ALAP levels of the intra-iteration subgraph.
#[derive(Clone, Debug)]
pub struct AsapAlap {
    /// Earliest start time (longest-latency path from any DAG source).
    pub asap: Vec<u32>,
    /// Latest start time that still meets the critical path.
    pub alap: Vec<u32>,
    /// Longest-latency path from the node to any DAG sink.
    pub height: Vec<u32>,
    /// Critical-path length of the intra-iteration DAG.
    pub critical_path: u32,
}

impl AsapAlap {
    /// Scheduling slack of a node (`alap − asap`); 0 on the critical path.
    #[inline]
    pub fn slack(&self, n: NodeId) -> u32 {
        self.alap[n.index()] - self.asap[n.index()]
    }
}

/// Bundle of per-DDG analyses, computed once and shared by later passes.
#[derive(Clone, Debug)]
pub struct DdgAnalysis {
    /// Topological order of the intra-iteration DAG.
    pub topo: Vec<NodeId>,
    /// ASAP/ALAP/height levels.
    pub levels: AsapAlap,
    /// SCC id per node (over the *full* graph, carried edges included).
    pub scc: Vec<u32>,
    /// Number of SCCs.
    pub num_sccs: u32,
    /// Recurrence-constrained MII.
    pub mii_rec: u32,
}

impl DdgAnalysis {
    /// Run every analysis on `ddg`.
    pub fn compute(ddg: &Ddg) -> Result<Self, DdgError> {
        let topo = intra_topo_order(ddg).ok_or(DdgError::ZeroDistanceCycle)?;
        let levels = asap_alap(ddg, &topo);
        let (scc, num_sccs) = tarjan_scc(ddg);
        let mii_rec = mii_rec(ddg)?;
        Ok(DdgAnalysis {
            topo,
            levels,
            scc,
            num_sccs,
            mii_rec,
        })
    }

    /// Nodes belonging to a non-trivial SCC (a recurrence).
    pub fn recurrence_nodes(&self, ddg: &Ddg) -> FxHashSet<NodeId> {
        let mut size = vec![0u32; self.num_sccs as usize];
        for n in ddg.node_ids() {
            size[self.scc[n.index()] as usize] += 1;
        }
        // A single node is still a recurrence if it has a self-loop.
        let mut out = FxHashSet::default();
        for n in ddg.node_ids() {
            let s = self.scc[n.index()];
            let self_loop = ddg.succ_edges(n).any(|(_, e)| e.dst == n);
            if size[s as usize] > 1 || self_loop {
                out.insert(n);
            }
        }
        out
    }
}

/// Kahn topological sort over intra-iteration (distance-0) edges.
///
/// Returns `None` when the distance-0 subgraph has a cycle (ill-formed loop).
pub fn intra_topo_order(ddg: &Ddg) -> Option<Vec<NodeId>> {
    let n = ddg.num_nodes();
    let mut indeg = vec![0u32; n];
    for e in ddg.edges() {
        if e.distance == 0 {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = ddg.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for (_, e) in ddg.succ_edges(v) {
            if e.distance == 0 {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    queue.push(e.dst);
                }
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// ASAP/ALAP levels over the intra-iteration DAG, given its topo order.
pub fn asap_alap(ddg: &Ddg, topo: &[NodeId]) -> AsapAlap {
    let n = ddg.num_nodes();
    let mut asap = vec![0u32; n];
    for &v in topo {
        for (_, e) in ddg.succ_edges(v) {
            if e.distance == 0 {
                let t = asap[v.index()] + e.latency;
                if t > asap[e.dst.index()] {
                    asap[e.dst.index()] = t;
                }
            }
        }
    }
    let mut height = vec![0u32; n];
    for &v in topo.iter().rev() {
        for (_, e) in ddg.succ_edges(v) {
            if e.distance == 0 {
                let t = height[e.dst.index()] + e.latency;
                if t > height[v.index()] {
                    height[v.index()] = t;
                }
            }
        }
    }
    let critical_path = ddg
        .node_ids()
        .map(|v| asap[v.index()] + height[v.index()])
        .max()
        .unwrap_or(0);
    let alap = (0..n).map(|i| critical_path - height[i]).collect();
    AsapAlap {
        asap,
        alap,
        height,
        critical_path,
    }
}

/// Tarjan's strongly-connected components over the full graph
/// (loop-carried edges included). Returns `(scc_id_per_node, scc_count)`.
///
/// Iterative formulation — multimedia DDGs are small but callers also feed
/// synthetic graphs of thousands of nodes, so no recursion.
pub fn tarjan_scc(ddg: &Ddg) -> (Vec<u32>, u32) {
    const UNVISITED: u32 = u32::MAX;
    let n = ddg.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![0u32; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;

    // Precomputed successor lists (full graph, carried edges included).
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|v| ddg.succs(NodeId(v as u32)).map(NodeId::index).collect())
        .collect();

    // Explicit DFS state: (node, iterator position over its succ edge list).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&(v, ei)) = call.last() {
            if ei < adj[v].len() {
                call.last_mut().expect("frame exists").1 += 1;
                let w = adj[v][ei];
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc, scc_count)
}

/// True when a cycle with positive total weight `latency − ii·distance`
/// exists — i.e. when `ii` violates some recurrence.
fn has_positive_cycle(ddg: &Ddg, ii: i64) -> bool {
    let n = ddg.num_nodes();
    if n == 0 {
        return false;
    }
    // Longest-path Bellman–Ford from a virtual source connected to all nodes
    // with weight 0; a positive cycle keeps relaxing past n rounds.
    let mut dist = vec![0i64; n];
    for round in 0..n {
        let mut changed = false;
        for e in ddg.edges() {
            let w = i64::from(e.latency) - ii * i64::from(e.distance);
            let cand = dist[e.src.index()] + w;
            if cand > dist[e.dst.index()] {
                dist[e.dst.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n - 1 {
            return true;
        }
    }
    false
}

/// Exact recurrence-constrained MII: the smallest `II ≥ 1` such that every
/// dependence cycle satisfies `Σ latency ≤ II · Σ distance`.
///
/// Errors with [`DdgError::ZeroDistanceCycle`] if some cycle has total
/// distance 0 and positive total latency (no II can satisfy it).
pub fn mii_rec(ddg: &Ddg) -> Result<u32, DdgError> {
    let total_lat: i64 = ddg.edges().iter().map(|e| i64::from(e.latency)).sum();
    let hi_probe = total_lat + 1;
    if has_positive_cycle(ddg, hi_probe) {
        return Err(DdgError::ZeroDistanceCycle);
    }
    // Monotone: larger II ⇒ weights only shrink. Binary search smallest
    // feasible II in [1, total_lat + 1].
    let (mut lo, mut hi) = (1i64, hi_probe);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(ddg, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(u32::try_from(lo).expect("MII fits u32"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::op::{LatencyModel, Opcode};

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Const);
        let c = b.node(Opcode::Add);
        let d = b.node(Opcode::Add);
        b.flow(a, c);
        b.flow(c, d);
        b.flow(a, d);
        let g = b.finish();
        let topo = intra_topo_order(&g).unwrap();
        let pos: Vec<usize> = g
            .node_ids()
            .map(|n| topo.iter().position(|&t| t == n).unwrap())
            .collect();
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn topo_order_ignores_carried_backedges() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.flow(a, c);
        b.carried(c, a, 1); // back-edge, loop-carried
        let g = b.finish();
        assert!(intra_topo_order(&g).is_some());
    }

    #[test]
    fn intra_cycle_detected() {
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let c = g.add_node(Opcode::Add, None);
        g.add_edge(a, c, 1, 0);
        g.add_edge(c, a, 1, 0);
        assert!(intra_topo_order(&g).is_none());
        assert_eq!(mii_rec(&g), Err(DdgError::ZeroDistanceCycle));
    }

    #[test]
    fn asap_alap_diamond() {
        // a(load,8) -> b(add,1) -> d ; a -> c(mul,2) -> d
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Load);
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Mul);
        let d = b.node(Opcode::Store);
        b.flow(a, x);
        b.flow(a, y);
        b.flow(x, d);
        b.flow(y, d);
        let g = b.finish();
        let topo = intra_topo_order(&g).unwrap();
        let lv = asap_alap(&g, &topo);
        assert_eq!(lv.asap[a.index()], 0);
        assert_eq!(lv.asap[x.index()], 8);
        assert_eq!(lv.asap[y.index()], 8);
        assert_eq!(lv.asap[d.index()], 10); // via mul (lat 2)
        assert_eq!(lv.critical_path, 10);
        // add path has 1 cycle of slack
        assert_eq!(lv.slack(x), 1);
        assert_eq!(lv.slack(y), 0);
        assert_eq!(lv.slack(a), 0);
        assert_eq!(lv.slack(d), 0);
    }

    #[test]
    fn scc_groups_recurrence() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        let lone = b.node(Opcode::Add);
        b.flow(a, c);
        b.carried(c, a, 1);
        b.flow(c, lone);
        let g = b.finish();
        let (scc, count) = tarjan_scc(&g);
        assert_eq!(count, 2);
        assert_eq!(scc[a.index()], scc[c.index()]);
        assert_ne!(scc[a.index()], scc[lone.index()]);
    }

    #[test]
    fn mii_rec_acyclic_is_one() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Load);
        let c = b.node(Opcode::Add);
        b.flow(a, c);
        assert_eq!(mii_rec(&b.finish()).unwrap(), 1);
    }

    #[test]
    fn mii_rec_self_loop() {
        // acc = acc + x, mac latency 2, distance 1 -> MIIRec = 2
        let mut b = DdgBuilder::default();
        let acc = b.node(Opcode::Mac);
        b.carried(acc, acc, 1);
        assert_eq!(mii_rec(&b.finish()).unwrap(), 2);
    }

    #[test]
    fn mii_rec_distance_divides() {
        // cycle latency 5 over distance 2 -> ceil(5/2)=3
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let c = g.add_node(Opcode::Add, None);
        g.add_edge(a, c, 3, 0);
        g.add_edge(c, a, 2, 2);
        assert_eq!(mii_rec(&g).unwrap(), 3);
    }

    #[test]
    fn mii_rec_takes_max_over_cycles() {
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let b2 = g.add_node(Opcode::Add, None);
        // cycle 1: lat 2 / dist 1 = 2
        g.add_edge(a, a, 2, 1);
        // cycle 2: lat 7 / dist 1 = 7
        g.add_edge(a, b2, 4, 0);
        g.add_edge(b2, a, 3, 1);
        assert_eq!(mii_rec(&g).unwrap(), 7);
    }

    #[test]
    fn mii_rec_zero_latency_cycle_ok() {
        // zero-latency, zero-distance cycles are impossible to build through
        // the public API (self-loop guard), but a 2-node zero-latency carried
        // cycle is fine and gives MII 1.
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let c = g.add_node(Opcode::Add, None);
        g.add_edge(a, c, 0, 0);
        g.add_edge(c, a, 0, 1);
        assert_eq!(mii_rec(&g).unwrap(), 1);
    }

    #[test]
    fn analysis_bundle() {
        let mut b = DdgBuilder::default();
        let acc = b.node(Opcode::Mac);
        let x = b.node(Opcode::Load);
        b.flow(x, acc);
        b.carried(acc, acc, 1);
        let g = b.finish();
        let an = DdgAnalysis::compute(&g).unwrap();
        assert_eq!(an.mii_rec, 2);
        assert_eq!(an.topo.len(), 2);
        let rec = an.recurrence_nodes(&g);
        assert!(rec.contains(&acc));
        assert!(!rec.contains(&x));
    }

    #[test]
    fn empty_graph_analysable() {
        let g = Ddg::new();
        let an = DdgAnalysis::compute(&g).unwrap();
        assert_eq!(an.mii_rec, 1);
        assert_eq!(an.levels.critical_path, 0);
    }
}
