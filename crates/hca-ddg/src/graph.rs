//! DDG storage: nodes, dependence edges, adjacency queries.
//!
//! Storage layout: flat `Vec`s of nodes and edges plus per-node edge-id lists
//! (`SmallVec` — multimedia DDG nodes rarely exceed 4 neighbours). `NodeId`
//! and `EdgeId` are `u32` newtypes, so the hot search structures built on top
//! of the DDG stay compact (perf-book: smaller integers for indices).

use crate::op::Opcode;
use serde::{Deserialize, Serialize};
use smallvec::SmallVec;
use std::fmt;

/// Index of a DDG node (instruction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a DDG edge (dependence).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Usable as a plain array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Usable as a plain array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One instruction of the loop body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DdgNode {
    /// Operation this node performs.
    pub op: Opcode,
    /// Optional human-readable label, e.g. `"sum[3]"`, kept for reports.
    pub name: Option<String>,
}

/// One data dependence.
///
/// `latency` is the number of cycles the consumer must be scheduled after the
/// producer; `distance` is the iteration distance (0 for intra-iteration flow,
/// ≥ 1 for loop-carried recurrences). Modulo-scheduling semantics:
/// `time(dst) ≥ time(src) + latency − II · distance`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdgEdge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Producer-to-consumer latency in cycles.
    pub latency: u32,
    /// Iteration distance (0 = intra-iteration).
    pub distance: u32,
}

impl DdgEdge {
    /// True for loop-carried dependences.
    #[inline]
    pub fn is_loop_carried(self) -> bool {
        self.distance > 0
    }
}

/// The Data Dependency Graph of one loop body.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ddg {
    nodes: Vec<DdgNode>,
    edges: Vec<DdgEdge>,
    succs: Vec<SmallVec<[EdgeId; 4]>>,
    preds: Vec<SmallVec<[EdgeId; 4]>>,
}

impl Ddg {
    /// Empty graph.
    pub fn new() -> Self {
        Ddg::default()
    }

    /// Append a node; returns its id.
    pub fn add_node(&mut self, op: Opcode, name: Option<String>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("DDG larger than u32::MAX nodes"));
        self.nodes.push(DdgNode { op, name });
        self.succs.push(SmallVec::new());
        self.preds.push(SmallVec::new());
        id
    }

    /// Append a dependence edge; returns its id.
    ///
    /// # Panics
    /// If `src`/`dst` are out of range or the edge is an intra-iteration
    /// self-loop (`src == dst && distance == 0`), which can never be satisfied.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, latency: u32, distance: u32) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src {src} out of range");
        assert!(dst.index() < self.nodes.len(), "dst {dst} out of range");
        assert!(
            src != dst || distance > 0,
            "intra-iteration self-loop on {src} is unsatisfiable"
        );
        let id = EdgeId(u32::try_from(self.edges.len()).expect("DDG larger than u32::MAX edges"));
        self.edges.push(DdgEdge {
            src,
            dst,
            latency,
            distance,
        });
        self.succs[src.index()].push(id);
        self.preds[dst.index()].push(id);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, id: NodeId) -> &DdgNode {
        &self.nodes[id.index()]
    }

    /// Edge payload.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> DdgEdge {
        self.edges[id.index()]
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone + use<> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids in creation order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone + use<> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// All edges.
    pub fn edges(&self) -> &[DdgEdge] {
        &self.edges
    }

    /// Outgoing edges of `n`.
    #[inline]
    pub fn succ_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, DdgEdge)> + '_ {
        self.succs[n.index()]
            .iter()
            .map(|&e| (e, self.edges[e.index()]))
    }

    /// Incoming edges of `n`.
    #[inline]
    pub fn pred_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, DdgEdge)> + '_ {
        self.preds[n.index()]
            .iter()
            .map(|&e| (e, self.edges[e.index()]))
    }

    /// Successor nodes (with multiplicity) of `n`.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ_edges(n).map(|(_, e)| e.dst)
    }

    /// Predecessor nodes (with multiplicity) of `n`.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred_edges(n).map(|(_, e)| e.src)
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succs[n.index()].len()
    }

    /// In-degree of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.preds[n.index()].len()
    }

    /// Count of nodes whose opcode satisfies `pred`.
    pub fn count_ops(&self, pred: impl Fn(Opcode) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(n.op)).count()
    }

    /// Nodes that have at least one *intra-iteration* predecessor.
    pub fn has_intra_pred(&self, n: NodeId) -> bool {
        self.pred_edges(n).any(|(_, e)| e.distance == 0)
    }

    /// A short multi-line summary for logs.
    pub fn summary(&self) -> String {
        let mem = self.count_ops(|o| o.is_memory());
        let alu = self.count_ops(|o| o.resource_class() == crate::op::ResourceClass::Alu);
        let carried = self.edges.iter().filter(|e| e.is_loop_carried()).count();
        format!(
            "DDG: {} nodes ({alu} ALU, {mem} mem), {} edges ({carried} loop-carried)",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;

    fn diamond() -> (Ddg, [NodeId; 4]) {
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Load, Some("a".into()));
        let b = g.add_node(Opcode::Add, None);
        let c = g.add_node(Opcode::Mul, None);
        let d = g.add_node(Opcode::Store, None);
        g.add_edge(a, b, 8, 0);
        g.add_edge(a, c, 8, 0);
        g.add_edge(b, d, 1, 0);
        g.add_edge(c, d, 2, 0);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_query_diamond() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.preds(d).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.node(a).op, Opcode::Load);
        assert_eq!(g.node(a).name.as_deref(), Some("a"));
    }

    #[test]
    fn loop_carried_flag() {
        let mut g = Ddg::new();
        let x = g.add_node(Opcode::Add, None);
        let e0 = g.add_edge(x, x, 1, 1);
        assert!(g.edge(e0).is_loop_carried());
        let y = g.add_node(Opcode::Add, None);
        let e1 = g.add_edge(x, y, 1, 0);
        assert!(!g.edge(e1).is_loop_carried());
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn rejects_intra_iteration_self_loop() {
        let mut g = Ddg::new();
        let x = g.add_node(Opcode::Add, None);
        g.add_edge(x, x, 1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_dangling_edge() {
        let mut g = Ddg::new();
        let x = g.add_node(Opcode::Add, None);
        g.add_edge(x, NodeId(7), 1, 0);
    }

    #[test]
    fn count_ops_by_class() {
        let (g, _) = diamond();
        assert_eq!(g.count_ops(|o| o.is_memory()), 2);
        assert_eq!(g.count_ops(|o| o == Opcode::Mul), 1);
    }

    #[test]
    fn summary_mentions_counts() {
        let (g, _) = diamond();
        let s = g.summary();
        assert!(s.contains("4 nodes"), "{s}");
        assert!(s.contains("4 edges"), "{s}");
    }

    #[test]
    fn has_intra_pred_distinguishes_carried_edges() {
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let b = g.add_node(Opcode::Add, None);
        g.add_edge(a, b, 1, 1); // only loop-carried into b
        assert!(!g.has_intra_pred(b));
        g.add_edge(a, b, 1, 0);
        assert!(g.has_intra_pred(b));
    }
}
