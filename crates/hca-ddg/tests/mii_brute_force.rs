//! Cross-validation of the binary-search MIIRec against brute force: on
//! small random graphs, enumerate every simple cycle explicitly and take
//! `max ceil(Σlatency / Σdistance)` — the definition. The production
//! implementation must agree exactly.

use hca_ddg::{analysis, Ddg, NodeId, Opcode};
use proptest::prelude::*;

/// Enumerate all simple cycles by DFS from each start node (smallest node
/// on the cycle, to avoid duplicates) and compute the definition directly.
fn brute_force_mii_rec(ddg: &Ddg) -> Option<u32> {
    let n = ddg.num_nodes();
    let mut best: u32 = 1;
    let mut found_zero_distance_cycle = false;

    // Path state for DFS: stack of (node, edge cursor).
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        ddg: &Ddg,
        start: usize,
        current: usize,
        lat: u64,
        dist: u64,
        visited: &mut Vec<bool>,
        best: &mut u32,
        zero: &mut bool,
    ) {
        for (_, e) in ddg.succ_edges(NodeId(current as u32)) {
            let next = e.dst.index();
            if next < start {
                continue; // cycles are counted from their smallest node
            }
            let nl = lat + u64::from(e.latency);
            let nd = dist + u64::from(e.distance);
            if next == start {
                if nd == 0 {
                    if nl > 0 {
                        *zero = true;
                    }
                } else {
                    *best = (*best).max(u32::try_from(nl.div_ceil(nd)).unwrap());
                }
                continue;
            }
            if !visited[next] {
                visited[next] = true;
                dfs(ddg, start, next, nl, nd, visited, best, zero);
                visited[next] = false;
            }
        }
    }

    for start in 0..n {
        let mut visited = vec![false; n];
        visited[start] = true;
        dfs(
            ddg,
            start,
            start,
            0,
            0,
            &mut visited,
            &mut best,
            &mut found_zero_distance_cycle,
        );
    }
    if found_zero_distance_cycle {
        None
    } else {
        Some(best)
    }
}

fn small_graph() -> impl Strategy<Value = Ddg> {
    (
        2usize..7,
        proptest::collection::vec((0usize..49, 0u32..6, 0u32..3), 1..14),
    )
        .prop_map(|(n, edges)| {
            let mut g = Ddg::new();
            for _ in 0..n {
                g.add_node(Opcode::Add, None);
            }
            for (code, lat, dist) in edges {
                let (a, b) = (code % n, (code / 7) % n);
                if a == b && dist == 0 {
                    continue; // unsatisfiable self-loop, rejected by the API
                }
                g.add_edge(NodeId(a as u32), NodeId(b as u32), lat, dist);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_search_mii_rec_matches_cycle_enumeration(g in small_graph()) {
        let fast = analysis::mii_rec(&g).ok();
        let slow = brute_force_mii_rec(&g);
        prop_assert_eq!(fast, slow, "graph: {:?}", g.edges());
    }
}

#[test]
fn agrees_on_the_paper_kernel_recurrences() {
    // Deterministic spot checks mirroring the kernels' recurrence shapes.
    let mut g = Ddg::new();
    let a = g.add_node(Opcode::Add, None);
    let b = g.add_node(Opcode::Add, None);
    let c = g.add_node(Opcode::Add, None);
    g.add_edge(a, b, 1, 0);
    g.add_edge(b, c, 1, 0);
    g.add_edge(c, a, 1, 1); // the fir2dim-style 3-cycle
    g.add_edge(b, b, 2, 1); // a mac accumulator
    assert_eq!(analysis::mii_rec(&g).ok(), brute_force_mii_rec(&g));
    assert_eq!(analysis::mii_rec(&g).unwrap(), 3);
}
