//! The hierarchical DSPFabric machine model (paper §2.2, Figure 2).
//!
//! The machine is a tree of *groups*. A group at depth `d` contains
//! `arity(d)` members; a member is itself a group one level down, except at
//! the deepest level where members are computation nodes (CNs). Members of
//! one group communicate through that group's MUX stage:
//!
//! * every member owns `out_wires` output wires — an output wire carries
//!   values produced inside the member and can be **broadcast** to any set of
//!   sibling members (and/or to one *glue-out* wire towards the parent);
//! * every member owns `in_wires` input ports — each port statically selects
//!   **one** source wire (a sibling's output wire or a glue-in wire coming
//!   down from the parent);
//! * `glue_in` / `glue_out` bound how many wires cross the group boundary
//!   (at the leaves, the crossbar accepts only K of the wires incoming from
//!   level 1 — the paper's `K` parameter).
//!
//! `DspFabric::standard(n, m, k)` builds the paper's 64-CN instance
//! (4 cluster-sets × 4 clusters × 4 CNs with MUX capacities N, M and a
//! crossbar intake of K; each CN has two incoming wires and one outgoing
//! wire).

use crate::dma::DmaModel;
use crate::resource::ResourceTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Flat identifier of a computation node, `0 .. num_cns()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CnId(pub u32);

impl CnId {
    /// Usable as a plain array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cn{}", self.0)
    }
}

impl fmt::Display for CnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cn{}", self.0)
    }
}

/// Index path of a group in the hierarchy: `[]` is the root group (whose
/// members are the cluster sets), `[i]` the i-th cluster set, `[i, j]` the
/// j-th cluster of set i. A path of length `depth()` names a single CN.
pub type GroupPath = Vec<usize>;

/// Interconnect parameters of one hierarchy level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSpec {
    /// Members per group at this level.
    pub arity: usize,
    /// Input ports per member (single-source each).
    pub in_wires: usize,
    /// Output wires per member (each broadcastable).
    pub out_wires: usize,
    /// Wires allowed to enter a group at this level from its parent.
    pub glue_in: usize,
    /// Wires allowed to leave a group at this level towards its parent.
    pub glue_out: usize,
}

/// The hierarchical machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DspFabric {
    /// One spec per level; `levels[0]` describes the root group of cluster
    /// sets, `levels.last()` describes the leaf groups of CNs.
    pub levels: Vec<LevelSpec>,
    /// Programmable DMA shared by all CNs.
    pub dma: DmaModel,
    /// Transport latency added to a value that crosses clusters, in cycles
    /// (cost of the `rcv` primitive path).
    pub copy_latency: u32,
}

impl DspFabric {
    /// The paper's 64-CN instance with MUX bandwidth parameters `n` (level 0),
    /// `m` (level 1) and `k` (crossbar intake at the leaves).
    pub fn standard(n: usize, m: usize, k: usize) -> Self {
        DspFabric {
            levels: vec![
                LevelSpec {
                    arity: 4,
                    in_wires: n,
                    out_wires: n,
                    glue_in: 0,
                    glue_out: 0,
                },
                LevelSpec {
                    arity: 4,
                    in_wires: m,
                    out_wires: m,
                    glue_in: n,
                    glue_out: n,
                },
                LevelSpec {
                    arity: 4,
                    in_wires: 2,
                    out_wires: 1,
                    glue_in: k,
                    glue_out: m,
                },
            ],
            dma: DmaModel::default(),
            copy_latency: 1,
        }
    }

    /// A machine from an explicit level stack (root first). The last level
    /// must describe the CN stage. Use for non-standard hierarchies — e.g.
    /// a four-level 256-CN fabric.
    pub fn custom(levels: Vec<LevelSpec>, dma: DmaModel, copy_latency: u32) -> Self {
        assert!(!levels.is_empty(), "a machine needs at least one level");
        assert_eq!(levels[0].glue_in, 0, "the root has no parent glue");
        assert_eq!(levels[0].glue_out, 0, "the root has no parent glue");
        DspFabric {
            levels,
            dma,
            copy_latency,
        }
    }

    /// Parse a compact machine description: `A×A×…@cap,cap,…` — arities per
    /// level and the per-level MUX capacity (the last level always gets the
    /// CN's 2-in/1-out wires; the listed capacity becomes its crossbar
    /// intake). Examples:
    ///
    /// * `"4x4x4@8,8,8"` — the paper's standard machine;
    /// * `"4x4@4,4"` — a two-level 16-CN fabric;
    /// * `"2x4x4x4@8,8,8,8"` — a four-level, 128-CN fabric.
    ///
    /// ```
    /// use hca_arch::DspFabric;
    /// let f = DspFabric::parse("4x4x4@8,8,8").unwrap();
    /// assert_eq!(f, DspFabric::standard(8, 8, 8));
    /// assert_eq!(DspFabric::parse("2x4x4x4@8,8,8,8").unwrap().num_cns(), 128);
    /// assert!(DspFabric::parse("not a machine").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (shape, caps) = spec
            .split_once('@')
            .ok_or_else(|| format!("`{spec}`: expected ARITIES@CAPS"))?;
        let arities: Vec<usize> = shape
            .split(['x', '×'])
            .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("`{spec}`: bad arity ({e})"))?;
        let capacities: Vec<usize> = caps
            .split(',')
            .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("`{spec}`: bad capacity ({e})"))?;
        if arities.len() != capacities.len() {
            return Err(format!(
                "`{spec}`: {} arities but {} capacities",
                arities.len(),
                capacities.len()
            ));
        }
        if arities.is_empty() || arities.iter().any(|&a| a < 2) {
            return Err(format!("`{spec}`: every level needs arity ≥ 2"));
        }
        let depth = arities.len();
        let levels = arities
            .iter()
            .zip(&capacities)
            .enumerate()
            .map(|(d, (&arity, &cap))| {
                if d + 1 == depth {
                    // CN stage: two incoming wires, one outgoing, the listed
                    // capacity as the crossbar intake.
                    LevelSpec {
                        arity,
                        in_wires: 2,
                        out_wires: 1,
                        glue_in: cap,
                        glue_out: if d == 0 { 0 } else { capacities[d - 1] },
                    }
                } else {
                    LevelSpec {
                        arity,
                        in_wires: cap,
                        out_wires: cap,
                        glue_in: if d == 0 { 0 } else { capacities[d - 1] },
                        glue_out: if d == 0 { 0 } else { capacities[d - 1] },
                    }
                }
            })
            .collect();
        Ok(DspFabric::custom(levels, DmaModel::default(), 1))
    }

    /// A reduced two-level instance (useful for tests and small sweeps):
    /// `sets` groups of `cns` CNs with `cap` wires everywhere.
    pub fn two_level(sets: usize, cns: usize, cap: usize) -> Self {
        DspFabric {
            levels: vec![
                LevelSpec {
                    arity: sets,
                    in_wires: cap,
                    out_wires: cap,
                    glue_in: 0,
                    glue_out: 0,
                },
                LevelSpec {
                    arity: cns,
                    in_wires: 2,
                    out_wires: 1,
                    glue_in: cap,
                    glue_out: cap,
                },
            ],
            dma: DmaModel::default(),
            copy_latency: 1,
        }
    }

    /// Number of hierarchy levels (3 for the standard machine).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Level spec at depth `d` (0 = root).
    #[inline]
    pub fn level(&self, d: usize) -> LevelSpec {
        self.levels[d]
    }

    /// Total number of computation nodes.
    pub fn num_cns(&self) -> usize {
        self.levels.iter().map(|l| l.arity).product()
    }

    /// Number of CNs inside one member of a group at depth `d`
    /// (16 at the root of the standard machine, 4 one level down, 1 at leaves).
    pub fn cns_per_member(&self, d: usize) -> usize {
        self.levels[d + 1..].iter().map(|l| l.arity).product()
    }

    /// Resource table of one member of a group at depth `d` — the union of
    /// the RTs of the CNs it embraces (paper §4.1, Figure 8).
    pub fn member_rt(&self, d: usize) -> ResourceTable {
        ResourceTable::of_cns(self.cns_per_member(d) as u32)
    }

    /// Decompose a flat CN id into its index path (one index per level).
    pub fn cn_path(&self, cn: CnId) -> GroupPath {
        let mut rem = cn.index();
        let mut path = vec![0usize; self.depth()];
        for d in (0..self.depth()).rev() {
            let a = self.levels[d].arity;
            path[d] = rem % a;
            rem /= a;
        }
        assert_eq!(rem, 0, "CN id {cn} out of range");
        path
    }

    /// Inverse of [`cn_path`](Self::cn_path).
    pub fn cn_of_path(&self, path: &[usize]) -> CnId {
        assert_eq!(path.len(), self.depth(), "path must reach a CN");
        let mut id = 0usize;
        for (d, &ix) in path.iter().enumerate() {
            let a = self.levels[d].arity;
            assert!(ix < a, "index {ix} exceeds arity {a} at depth {d}");
            id = id * a + ix;
        }
        CnId(id as u32)
    }

    /// All CN ids.
    pub fn cn_ids(&self) -> impl ExactSizeIterator<Item = CnId> + Clone + use<> {
        (0..self.num_cns() as u32).map(CnId)
    }

    /// All group paths at depth `d` (each addresses a group whose members sit
    /// at depth `d`; `d = 0` yields only the root `[]`).
    pub fn groups_at(&self, d: usize) -> Vec<GroupPath> {
        let mut out: Vec<GroupPath> = vec![vec![]];
        for lvl in 0..d {
            let a = self.levels[lvl].arity;
            let mut next = Vec::with_capacity(out.len() * a);
            for p in &out {
                for i in 0..a {
                    let mut q = p.clone();
                    q.push(i);
                    next.push(q);
                }
            }
            out = next;
        }
        out
    }

    /// Depth of the deepest common group of two CNs: the length of the
    /// longest common prefix of their paths. `0` means they only share the
    /// root group (they sit in different cluster sets).
    pub fn common_depth(&self, a: CnId, b: CnId) -> usize {
        let (pa, pb) = (self.cn_path(a), self.cn_path(b));
        pa.iter().zip(&pb).take_while(|(x, y)| x == y).count()
    }

    /// Aggregate resource table of the *equivalent unified machine* (same
    /// total resources in a single cluster) — the paper's theoretical optimum
    /// reference in §5.
    pub fn unified_rt(&self) -> ResourceTable {
        ResourceTable::of_cns(self.num_cns() as u32)
    }

    /// Number of parallel shortest paths between two CNs sitting across the
    /// level-0 MUXes of the standard machine — the paper's `K²M²N²` explosion
    /// argument (§4). Returns the product of squared capacities along the
    /// up-and-down path between the two CNs.
    pub fn parallel_shortest_paths(&self, a: CnId, b: CnId) -> u128 {
        let cd = self.common_depth(a, b);
        if cd == self.depth() {
            return 1; // same CN
        }
        let mut paths: u128 = 1;
        // Value leaves through each boundary (glue_out below the meeting
        // level) and re-enters through the corresponding glue_in stages.
        for d in cd + 1..self.depth() {
            let l = self.levels[d];
            paths = paths.saturating_mul((l.glue_out as u128).max(1));
            paths = paths.saturating_mul((l.glue_in as u128).max(1));
        }
        // Crossing the meeting group itself: out_wires × in_wires choices.
        let l = self.levels[cd];
        paths = paths.saturating_mul((l.out_wires as u128).max(1));
        paths = paths.saturating_mul((l.in_wires as u128).max(1));
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_machine_has_64_cns() {
        let f = DspFabric::standard(8, 8, 8);
        assert_eq!(f.num_cns(), 64);
        assert_eq!(f.depth(), 3);
        assert_eq!(f.cns_per_member(0), 16);
        assert_eq!(f.cns_per_member(1), 4);
        assert_eq!(f.cns_per_member(2), 1);
    }

    #[test]
    fn member_rts_match_figure8() {
        // Fig. 8: PG0 nodes hold 16 ALUs/AGs, PG0,i hold 4, PG0,i,j hold 1.
        let f = DspFabric::standard(4, 4, 4);
        assert_eq!(f.member_rt(0), ResourceTable::of_cns(16));
        assert_eq!(f.member_rt(1), ResourceTable::of_cns(4));
        assert_eq!(f.member_rt(2), ResourceTable::CN);
    }

    #[test]
    fn path_roundtrip() {
        let f = DspFabric::standard(8, 8, 8);
        for cn in f.cn_ids() {
            let p = f.cn_path(cn);
            assert_eq!(p.len(), 3);
            assert_eq!(f.cn_of_path(&p), cn);
        }
        assert_eq!(f.cn_path(CnId(0)), vec![0, 0, 0]);
        assert_eq!(f.cn_path(CnId(63)), vec![3, 3, 3]);
        assert_eq!(f.cn_path(CnId(21)), vec![1, 1, 1]);
    }

    #[test]
    fn groups_at_counts() {
        let f = DspFabric::standard(8, 8, 8);
        assert_eq!(f.groups_at(0), vec![Vec::<usize>::new()]);
        assert_eq!(f.groups_at(1).len(), 4);
        assert_eq!(f.groups_at(2).len(), 16);
    }

    #[test]
    fn common_depth_examples() {
        let f = DspFabric::standard(8, 8, 8);
        let a = f.cn_of_path(&[0, 0, 0]);
        let b = f.cn_of_path(&[0, 0, 1]);
        let c = f.cn_of_path(&[0, 1, 0]);
        let d = f.cn_of_path(&[3, 0, 0]);
        assert_eq!(f.common_depth(a, b), 2);
        assert_eq!(f.common_depth(a, c), 1);
        assert_eq!(f.common_depth(a, d), 0);
        assert_eq!(f.common_depth(a, a), 3);
    }

    #[test]
    fn path_explosion_matches_paper_formula() {
        // Two CNs at different sides of level-0 MUXes: K²M²N² shortest paths.
        let f = DspFabric::standard(8, 8, 8);
        let a = f.cn_of_path(&[0, 0, 0]);
        let b = f.cn_of_path(&[1, 0, 0]);
        let expect = 8u128 * 8 * 8 * 8 * 8 * 8; // N·N · N(glue_out lvl1)·... see below
                                                // With standard(n,m,k): crossing root: out·in = n²; level-1 boundary:
                                                // glue_out(=n)·glue_in(=n) — wait, glue at level 1 is n, at leaves
                                                // glue_in=k, glue_out=m. Total = n² · (n·n) · (m·k).
        let got = f.parallel_shortest_paths(a, b);
        assert_eq!(got, 8u128.pow(4) * 8 * 8);
        assert_eq!(got, expect);
        assert_eq!(f.parallel_shortest_paths(a, a), 1);
    }

    #[test]
    fn two_level_machine() {
        let f = DspFabric::two_level(4, 4, 4);
        assert_eq!(f.num_cns(), 16);
        assert_eq!(f.depth(), 2);
        assert_eq!(f.member_rt(0), ResourceTable::of_cns(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cn_path_rejects_out_of_range() {
        let f = DspFabric::two_level(2, 2, 2);
        f.cn_path(CnId(4));
    }

    #[test]
    fn parse_standard_machine() {
        let f = DspFabric::parse("4x4x4@8,8,8").unwrap();
        assert_eq!(f, DspFabric::standard(8, 8, 8));
        // Unicode × accepted too.
        assert_eq!(DspFabric::parse("4×4×4@8,8,8").unwrap(), f);
    }

    #[test]
    fn parse_custom_depths() {
        let two = DspFabric::parse("4x4@4,4").unwrap();
        assert_eq!(two.depth(), 2);
        assert_eq!(two.num_cns(), 16);
        let four = DspFabric::parse("2x4x4x4@8,8,8,8").unwrap();
        assert_eq!(four.depth(), 4);
        assert_eq!(four.num_cns(), 128);
        // CN stage always 2-in/1-out.
        let leaf = four.level(3);
        assert_eq!((leaf.in_wires, leaf.out_wires), (2, 1));
        assert_eq!(leaf.glue_in, 8);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(DspFabric::parse("4x4x4").is_err()); // no capacities
        assert!(DspFabric::parse("4x4@8").is_err()); // count mismatch
        assert!(DspFabric::parse("4x1@8,8").is_err()); // arity < 2
        assert!(DspFabric::parse("@8").is_err());
        assert!(DspFabric::parse("axb@8,8").is_err());
    }
}
