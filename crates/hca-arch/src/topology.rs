//! The *configured* topology of a hierarchical machine.
//!
//! Reconfiguration (paper §2) selects, before the loop runs, which physical
//! wires are active and which values travel on them. This module stores that
//! selection per hierarchy group and validates it against the machine's MUX
//! capacities:
//!
//! * a wire has exactly **one source** (a member's output or a glue wire from
//!   the parent level) — MUX inputs are single-source / unary fan-in;
//! * a wire may **broadcast** to any set of sibling members and may continue
//!   to the parent level (`to_parent`);
//! * per-group budgets: out-wires per member, in-ports per member, glue-in
//!   and glue-out wire counts (the paper's N/M/K parameters).
//!
//! [`Topology::value_reaches`] is the primitive under the paper's coherency
//! checker: it walks the hierarchy and verifies a value configured out of CN
//! `u` really arrives at CN `v`.

use crate::dspfabric::{CnId, DspFabric, GroupPath};
use hca_ddg::NodeId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a configured wire takes its single source from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireSource {
    /// Output wire of a sibling member (index within the group).
    Member(usize),
    /// A glue wire descending from the parent group.
    Parent,
}

/// One configured wire inside a group.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfiguredWire {
    /// The single source feeding the wire.
    pub src: WireSource,
    /// Sibling members listening on the wire (broadcast set).
    pub receivers: Vec<usize>,
    /// True when the wire also continues upward into a parent glue-out slot.
    pub to_parent: bool,
    /// Values (identified by their producing DDG node) carried on the wire.
    pub values: Vec<NodeId>,
}

impl ConfiguredWire {
    /// Does the wire carry `v`?
    #[inline]
    pub fn carries(&self, v: NodeId) -> bool {
        self.values.contains(&v)
    }

    /// Time-multiplexing pressure of the wire: one slot per value per II.
    #[inline]
    pub fn pressure(&self) -> u32 {
        self.values.len() as u32
    }
}

/// Legacy alias kept for the public API surface: a glue wire is an ordinary
/// [`ConfiguredWire`] whose `src` is [`WireSource::Parent`] (glue-in) or whose
/// `to_parent` flag is set (glue-out).
pub type GlueWire = ConfiguredWire;

/// All configured wires of one group.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupTopology {
    /// Wires of the group, in configuration order.
    pub wires: Vec<ConfiguredWire>,
}

impl GroupTopology {
    /// Wires sourced by member `m`.
    pub fn member_wires(&self, m: usize) -> impl Iterator<Item = &ConfiguredWire> {
        self.wires
            .iter()
            .filter(move |w| w.src == WireSource::Member(m))
    }

    /// Wires descending from the parent.
    pub fn glue_in_wires(&self) -> impl Iterator<Item = &ConfiguredWire> {
        self.wires.iter().filter(|w| w.src == WireSource::Parent)
    }

    /// Wires continuing to the parent.
    pub fn glue_out_wires(&self) -> impl Iterator<Item = &ConfiguredWire> {
        self.wires.iter().filter(|w| w.to_parent)
    }

    /// Number of distinct wires member `m` listens to (input-port usage).
    pub fn in_ports_used(&self, m: usize) -> usize {
        self.wires
            .iter()
            .filter(|w| w.receivers.contains(&m))
            .count()
    }

    /// Max time-multiplexing pressure over the group's wires.
    pub fn max_pressure(&self) -> u32 {
        self.wires
            .iter()
            .map(ConfiguredWire::pressure)
            .max()
            .unwrap_or(0)
    }
}

/// A violation found by [`Topology::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyError {
    /// Group where the violation occurred.
    pub group: GroupPath,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group {:?}: {}", self.group, self.message)
    }
}

impl std::error::Error for TopologyError {}

/// The configured topology of a whole hierarchical machine: one
/// [`GroupTopology`] per group (groups with no active wires may be absent).
///
/// Serialises as a list of `(path, group)` pairs — JSON objects cannot key
/// on integer paths.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(
    from = "Vec<(GroupPath, GroupTopology)>",
    into = "Vec<(GroupPath, GroupTopology)>"
)]
pub struct Topology {
    groups: FxHashMap<GroupPath, GroupTopology>,
}

impl From<Vec<(GroupPath, GroupTopology)>> for Topology {
    fn from(pairs: Vec<(GroupPath, GroupTopology)>) -> Self {
        Topology {
            groups: pairs.into_iter().collect(),
        }
    }
}

impl From<Topology> for Vec<(GroupPath, GroupTopology)> {
    fn from(t: Topology) -> Self {
        let mut pairs: Vec<_> = t.groups.into_iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs
    }
}

impl Topology {
    /// Empty topology (nothing configured).
    pub fn new() -> Self {
        Topology::default()
    }

    /// Group topology at `path`, if any wires are configured there.
    pub fn group(&self, path: &[usize]) -> Option<&GroupTopology> {
        self.groups.get(path)
    }

    /// Mutable group topology at `path`, created on demand.
    pub fn group_mut(&mut self, path: &[usize]) -> &mut GroupTopology {
        self.groups.entry(path.to_vec()).or_default()
    }

    /// Iterate over all non-empty groups.
    pub fn iter(&self) -> impl Iterator<Item = (&GroupPath, &GroupTopology)> {
        self.groups.iter()
    }

    /// Total number of configured wires.
    pub fn num_wires(&self) -> usize {
        self.groups.values().map(|g| g.wires.len()).sum()
    }

    /// Maximum wire pressure anywhere in the machine (contributes to the
    /// final MII: each value on a wire consumes one transport slot per II).
    pub fn max_wire_pressure(&self) -> u32 {
        self.groups
            .values()
            .map(GroupTopology::max_pressure)
            .max()
            .unwrap_or(0)
    }

    /// Validate every group against the machine's MUX budgets.
    pub fn validate(&self, fabric: &DspFabric) -> Result<(), TopologyError> {
        for (path, gt) in &self.groups {
            let depth = path.len();
            if depth >= fabric.depth() {
                return Err(TopologyError {
                    group: path.clone(),
                    message: format!("path of length {depth} does not address a group"),
                });
            }
            let spec = fabric.level(depth);
            let err = |message: String| TopologyError {
                group: path.clone(),
                message,
            };
            let mut glue_in = 0usize;
            let mut glue_out = 0usize;
            let mut out_per_member = vec![0usize; spec.arity];
            let mut in_per_member = vec![0usize; spec.arity];
            for w in &gt.wires {
                match w.src {
                    WireSource::Member(m) => {
                        if m >= spec.arity {
                            return Err(err(format!("wire source member {m} out of range")));
                        }
                        out_per_member[m] += 1;
                        if w.receivers.contains(&m) {
                            return Err(err(format!("member {m} listens to its own wire")));
                        }
                    }
                    WireSource::Parent => {
                        glue_in += 1;
                        if depth == 0 {
                            return Err(err("root group cannot receive glue wires".into()));
                        }
                    }
                }
                if w.to_parent {
                    glue_out += 1;
                    if depth == 0 {
                        return Err(err("root group cannot emit glue wires".into()));
                    }
                }
                if w.receivers.is_empty() && !w.to_parent {
                    return Err(err("wire with no receivers and no parent exit".into()));
                }
                for &r in &w.receivers {
                    if r >= spec.arity {
                        return Err(err(format!("receiver {r} out of range")));
                    }
                    in_per_member[r] += 1;
                }
            }
            if glue_in > spec.glue_in {
                return Err(err(format!(
                    "{} glue-in wires exceed budget {}",
                    glue_in, spec.glue_in
                )));
            }
            if glue_out > spec.glue_out {
                return Err(err(format!(
                    "{} glue-out wires exceed budget {}",
                    glue_out, spec.glue_out
                )));
            }
            for m in 0..spec.arity {
                if out_per_member[m] > spec.out_wires {
                    return Err(err(format!(
                        "member {m} uses {} of {} output wires",
                        out_per_member[m], spec.out_wires
                    )));
                }
                if in_per_member[m] > spec.in_wires {
                    return Err(err(format!(
                        "member {m} uses {} of {} input ports",
                        in_per_member[m], spec.in_wires
                    )));
                }
            }
        }
        Ok(())
    }

    /// Does value `v` (produced at CN `src`) reach CN `dst` on configured
    /// wires? Walks up from `src` to the deepest common group, across it and
    /// down to `dst` (see module docs).
    pub fn value_reaches(&self, fabric: &DspFabric, v: NodeId, src: CnId, dst: CnId) -> bool {
        if src == dst {
            return true;
        }
        let ps = fabric.cn_path(src);
        let pd = fabric.cn_path(dst);
        let meet = ps.iter().zip(&pd).take_while(|(a, b)| a == b).count();
        let depth = fabric.depth();

        // Ascend: in every group strictly below the meeting group on the
        // source side, the value must leave on a member wire marked to_parent.
        for g in (meet + 1..depth).rev() {
            let group = &ps[..g];
            let ok = self.group(group).is_some_and(|gt| {
                gt.wires
                    .iter()
                    .any(|w| w.src == WireSource::Member(ps[g]) && w.to_parent && w.carries(v))
            });
            if !ok {
                return false;
            }
        }
        // Meeting group: a member wire from the source side must reach the
        // destination-side member.
        let ok = self.group(&ps[..meet]).is_some_and(|gt| {
            gt.wires.iter().any(|w| {
                w.src == WireSource::Member(ps[meet])
                    && w.receivers.contains(&pd[meet])
                    && w.carries(v)
            })
        });
        if !ok {
            return false;
        }
        // Descend: in every group strictly below the meeting group on the
        // destination side, a parent-sourced wire must hand the value to the
        // next member down.
        for g in meet + 1..depth {
            let group = &pd[..g];
            let ok = self.group(group).is_some_and(|gt| {
                gt.wires.iter().any(|w| {
                    w.src == WireSource::Parent && w.receivers.contains(&pd[g]) && w.carries(v)
                })
            });
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> NodeId {
        NodeId(n)
    }

    /// Configure a full path for value 0 from CN [0,0,0] to CN [1,0,0] on the
    /// standard machine.
    fn cross_set_topology() -> (DspFabric, Topology) {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        // Leaf group [0,0]: CN 0 sends up.
        t.group_mut(&[0, 0]).wires.push(ConfiguredWire {
            src: WireSource::Member(0),
            receivers: vec![],
            to_parent: true,
            values: vec![v(0)],
        });
        // Level-1 group [0]: cluster 0 sends up.
        t.group_mut(&[0]).wires.push(ConfiguredWire {
            src: WireSource::Member(0),
            receivers: vec![],
            to_parent: true,
            values: vec![v(0)],
        });
        // Root: set 0 broadcasts to set 1.
        t.group_mut(&[]).wires.push(ConfiguredWire {
            src: WireSource::Member(0),
            receivers: vec![1],
            to_parent: false,
            values: vec![v(0)],
        });
        // Level-1 group [1]: glue-in towards cluster 0.
        t.group_mut(&[1]).wires.push(ConfiguredWire {
            src: WireSource::Parent,
            receivers: vec![0],
            to_parent: false,
            values: vec![v(0)],
        });
        // Leaf group [1,0]: glue-in towards CN 0.
        t.group_mut(&[1, 0]).wires.push(ConfiguredWire {
            src: WireSource::Parent,
            receivers: vec![0],
            to_parent: false,
            values: vec![v(0)],
        });
        (f, t)
    }

    #[test]
    fn cross_set_path_is_coherent() {
        let (f, t) = cross_set_topology();
        assert!(t.validate(&f).is_ok());
        let src = f.cn_of_path(&[0, 0, 0]);
        let dst = f.cn_of_path(&[1, 0, 0]);
        assert!(t.value_reaches(&f, v(0), src, dst));
        // A different value does not reach.
        assert!(!t.value_reaches(&f, v(1), src, dst));
        // A different destination CN in the same cluster does not receive.
        let other = f.cn_of_path(&[1, 0, 1]);
        assert!(!t.value_reaches(&f, v(0), src, other));
        // Same CN trivially reaches.
        assert!(t.value_reaches(&f, v(0), src, src));
    }

    #[test]
    fn sibling_path_within_leaf_group() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        t.group_mut(&[2, 3]).wires.push(ConfiguredWire {
            src: WireSource::Member(1),
            receivers: vec![0, 2],
            to_parent: false,
            values: vec![v(7), v(9)],
        });
        assert!(t.validate(&f).is_ok());
        let src = f.cn_of_path(&[2, 3, 1]);
        assert!(t.value_reaches(&f, v(7), src, f.cn_of_path(&[2, 3, 0])));
        assert!(t.value_reaches(&f, v(9), src, f.cn_of_path(&[2, 3, 2])));
        assert!(!t.value_reaches(&f, v(7), src, f.cn_of_path(&[2, 3, 3])));
    }

    #[test]
    fn validate_rejects_port_overuse() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        // Leaf CNs have 2 input ports; give CN 0 three distinct wires.
        for s in 1..=3usize {
            t.group_mut(&[0, 0]).wires.push(ConfiguredWire {
                src: WireSource::Member(s),
                receivers: vec![0],
                to_parent: false,
                values: vec![v(s as u32)],
            });
        }
        let err = t.validate(&f).unwrap_err();
        assert!(err.message.contains("input ports"), "{err}");
    }

    #[test]
    fn validate_rejects_output_overuse() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        // A CN has a single output wire; configure two from member 0.
        for val in 0..2u32 {
            t.group_mut(&[0, 0]).wires.push(ConfiguredWire {
                src: WireSource::Member(0),
                receivers: vec![1],
                to_parent: false,
                values: vec![v(val)],
            });
        }
        let err = t.validate(&f).unwrap_err();
        assert!(err.message.contains("output wires"), "{err}");
    }

    #[test]
    fn validate_rejects_glue_budget_overflow() {
        let f = DspFabric::standard(2, 2, 2);
        let mut t = Topology::new();
        // Leaf glue_in budget is k = 2; configure 3 parent wires.
        for val in 0..3u32 {
            t.group_mut(&[0, 0]).wires.push(ConfiguredWire {
                src: WireSource::Parent,
                receivers: vec![val as usize % 2],
                to_parent: false,
                values: vec![v(val)],
            });
        }
        let err = t.validate(&f).unwrap_err();
        assert!(err.message.contains("glue-in"), "{err}");
    }

    #[test]
    fn validate_rejects_root_glue() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        t.group_mut(&[]).wires.push(ConfiguredWire {
            src: WireSource::Parent,
            receivers: vec![0],
            to_parent: false,
            values: vec![v(0)],
        });
        assert!(t.validate(&f).is_err());
    }

    #[test]
    fn validate_rejects_self_listen_and_dangling() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        t.group_mut(&[0]).wires.push(ConfiguredWire {
            src: WireSource::Member(1),
            receivers: vec![1],
            to_parent: false,
            values: vec![v(0)],
        });
        assert!(t.validate(&f).unwrap_err().message.contains("own wire"));

        let mut t2 = Topology::new();
        t2.group_mut(&[0]).wires.push(ConfiguredWire {
            src: WireSource::Member(1),
            receivers: vec![],
            to_parent: false,
            values: vec![v(0)],
        });
        assert!(t2
            .validate(&f)
            .unwrap_err()
            .message
            .contains("no receivers"));
    }

    #[test]
    fn pressure_accounting() {
        let (_, t) = cross_set_topology();
        assert_eq!(t.max_wire_pressure(), 1);
        assert_eq!(t.num_wires(), 5);
        let gt = t.group(&[0, 0]).unwrap();
        assert_eq!(gt.glue_out_wires().count(), 1);
        assert_eq!(gt.in_ports_used(0), 0);
    }
}
