//! The RCP machine model (paper §2.1, Figure 1).
//!
//! RCP is a *flat* (non-hierarchical) clustered VLIW with a reconfigurable
//! ring interconnect: each cluster could receive values from its `2·reach`
//! ring neighbours, but only `input_ports < 2·reach` connections can be
//! configured simultaneously. RCP is heterogeneous — only some PEs issue
//! memory instructions (it shares the cache hierarchy with the host CPU).
//!
//! In the HCA pipeline RCP serves as the degenerate one-level case: its
//! Pattern Graph is exactly its potential-connection graph, and a single SEE
//! run performs the whole assignment.

use crate::resource::ResourceTable;
use serde::{Deserialize, Serialize};

/// RCP ring machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rcp {
    /// Number of clusters on the ring.
    pub clusters: usize,
    /// A cluster can *potentially* receive from neighbours up to this ring
    /// distance on each side (Figure 1a shows reach 2 ⇒ 4 potential sources).
    pub reach: usize,
    /// Input ports per cluster: max simultaneously configured sources
    /// (Figure 1b shows a feasible topology with 2 ports).
    pub input_ports: usize,
    /// Which clusters own a memory port (RCP is heterogeneous).
    pub mem_capable: Vec<bool>,
}

impl Rcp {
    /// The paper's Figure-1 instance: 8 clusters, reach 2 (4 potential
    /// sources each), 2 input ports, memory on every other cluster.
    pub fn figure1() -> Self {
        Rcp::new(8, 2, 2, |c| c % 2 == 0)
    }

    /// Build an RCP ring.
    pub fn new(
        clusters: usize,
        reach: usize,
        input_ports: usize,
        mem: impl Fn(usize) -> bool,
    ) -> Self {
        assert!(clusters >= 2, "need at least two clusters");
        assert!(reach >= 1 && reach < clusters, "reach out of range");
        Rcp {
            clusters,
            reach,
            input_ports,
            mem_capable: (0..clusters).map(mem).collect(),
        }
    }

    /// Potential source clusters of `c` (the dashed arcs of Figure 1a).
    pub fn potential_sources(&self, c: usize) -> Vec<usize> {
        assert!(c < self.clusters);
        let n = self.clusters;
        let mut out = Vec::with_capacity(2 * self.reach);
        for d in 1..=self.reach {
            out.push((c + n - d) % n);
            out.push((c + d) % n);
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&s| s != c);
        out
    }

    /// True when `src → dst` is a potential connection.
    pub fn can_connect(&self, src: usize, dst: usize) -> bool {
        self.potential_sources(dst).contains(&src)
    }

    /// Resource table of cluster `c`: one issue slot and ALU; an address
    /// generator only on memory-capable clusters.
    pub fn cluster_rt(&self, c: usize) -> ResourceTable {
        ResourceTable {
            issue: 1,
            alu: 1,
            addr_gen: u32::from(self.mem_capable[c]),
        }
    }

    /// Check a chosen topology (a list of configured `src → dst` wires) for
    /// feasibility: every wire must be potential, and no cluster may exceed
    /// its input ports. Returns the first violation as an error string.
    pub fn check_topology(&self, wires: &[(usize, usize)]) -> Result<(), String> {
        let mut in_count = vec![0usize; self.clusters];
        for &(s, d) in wires {
            if s >= self.clusters || d >= self.clusters {
                return Err(format!("wire {s}->{d} out of range"));
            }
            if !self.can_connect(s, d) {
                return Err(format!("{s}->{d} is not a potential connection"));
            }
            in_count[d] += 1;
            if in_count[d] > self.input_ports {
                return Err(format!(
                    "cluster {d} exceeds {} input ports",
                    self.input_ports
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_potential_connections() {
        let r = Rcp::figure1();
        // Fig 1a: each cluster could receive a copy from 4 neighbours.
        for c in 0..8 {
            assert_eq!(r.potential_sources(c).len(), 4, "cluster {c}");
        }
        assert_eq!(r.potential_sources(0), vec![1, 2, 6, 7]);
    }

    #[test]
    fn figure1_feasible_topology() {
        let r = Rcp::figure1();
        // Fig 1b-style ring with 2 input ports: each cluster listens to its
        // two immediate neighbours.
        let wires: Vec<(usize, usize)> = (0..8)
            .flat_map(|c| [((c + 7) % 8, c), ((c + 1) % 8, c)])
            .collect();
        assert!(r.check_topology(&wires).is_ok());
    }

    #[test]
    fn port_limit_enforced() {
        let r = Rcp::figure1();
        // Cluster 0 listening to 3 sources exceeds its 2 ports.
        let wires = [(1usize, 0usize), (2, 0), (7, 0)];
        let err = r.check_topology(&wires).unwrap_err();
        assert!(err.contains("exceeds 2 input ports"), "{err}");
    }

    #[test]
    fn non_potential_wire_rejected() {
        let r = Rcp::figure1();
        let err = r.check_topology(&[(0, 4)]).unwrap_err();
        assert!(err.contains("not a potential connection"), "{err}");
    }

    #[test]
    fn heterogeneous_memory() {
        let r = Rcp::figure1();
        assert_eq!(r.cluster_rt(0).addr_gen, 1);
        assert_eq!(r.cluster_rt(1).addr_gen, 0);
    }

    #[test]
    fn small_ring_reach_wraps_without_duplicates() {
        let r = Rcp::new(3, 1, 1, |_| true);
        assert_eq!(r.potential_sources(0), vec![1, 2]);
        let r2 = Rcp::new(4, 2, 2, |_| true);
        // reach 2 on a 4-ring: neighbours {2,3,1} (distance-2 both ways is
        // the same cluster) and never itself.
        assert_eq!(r2.potential_sources(0), vec![1, 2, 3]);
    }
}
