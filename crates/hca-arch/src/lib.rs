//! # hca-arch — machine models
//!
//! Parametric models of the two coarse-grain reconfigurable coprocessors the
//! paper targets:
//!
//! * **DSPFabric** (§2.2) — a strongly *hierarchical* machine: 64 computation
//!   nodes (CNs) arranged as 4 cluster-sets × 4 clusters × 4 CNs. Adjacent
//!   siblings at every level communicate through MUXes of bounded capacity
//!   (N at level 0, M at level 1, a crossbar taking K inherited wires at the
//!   leaves); output wires broadcast, input wires are single-source, and each
//!   CN has two incoming wires and one outgoing wire.
//! * **RCP** (§2.1) — a flat ring of clusters where each cluster *could*
//!   receive from `2·reach` neighbours but only `K` input ports are
//!   configurable simultaneously; heterogeneous (only some PEs reach memory).
//!
//! The models expose exactly what the Instruction Cluster Assignment needs
//! (paper §4): per-cluster resource tables, the interconnect topology with
//! its reconfiguration constraints, and the DMA request-port budget. They
//! also define [`topology::Topology`], the *configured* machine produced at
//! the end of HCA and consumed by the coherency checker and the simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dma;
pub mod dspfabric;
pub mod rcp;
pub mod resource;
pub mod topology;

pub use dma::DmaModel;
pub use dspfabric::{CnId, DspFabric, GroupPath, LevelSpec};
pub use rcp::Rcp;
pub use resource::ResourceTable;
pub use topology::{ConfiguredWire, GlueWire, GroupTopology, Topology, TopologyError};
