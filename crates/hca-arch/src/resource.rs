//! Resource tables.
//!
//! Every Pattern-Graph node "is represented by its Resource Table" (paper
//! §3); at the leaves a table describes one computation node (issue slot,
//! ALU, address generator), higher up it is "the union of all the RTs of the
//! CNs it includes" (§4.1) — here: the element-wise sum.

use hca_ddg::{Opcode, ResourceClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Per-cluster functional resources, per initiation interval.
///
/// All quantities are *per-cycle issue capacity*: a cluster with `alu = 4`
/// can start 4 ALU ops per cycle, i.e. `4 · II` ALU ops per loop iteration
/// once modulo-scheduled at initiation interval `II`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceTable {
    /// Instruction issue slots (a DSPFabric CN is single-issue).
    pub issue: u32,
    /// ALU count.
    pub alu: u32,
    /// Address generators towards the DMA.
    pub addr_gen: u32,
}

impl ResourceTable {
    /// The resource table of one DSPFabric computation node.
    pub const CN: ResourceTable = ResourceTable {
        issue: 1,
        alu: 1,
        addr_gen: 1,
    };

    /// Table of a cluster aggregating `k` CNs (union of their RTs, §4.1).
    pub fn of_cns(k: u32) -> ResourceTable {
        ResourceTable {
            issue: k,
            alu: k,
            addr_gen: k,
        }
    }

    /// Capacity of the given resource class.
    #[inline]
    pub fn capacity(&self, class: ResourceClass) -> u32 {
        match class {
            ResourceClass::Alu => self.alu,
            ResourceClass::AddrGen => self.addr_gen,
            // Receives only consume an issue slot.
            ResourceClass::Receive => self.issue,
        }
    }

    /// True when this table has at least one unit of every resource an
    /// instruction with opcode `op` needs (an issue slot plus its class).
    pub fn can_execute(&self, op: Opcode) -> bool {
        self.issue > 0 && self.capacity(op.resource_class()) > 0
    }

    /// Resource-constrained MII contribution of a load `(issued_ops,
    /// class_ops)` on this table: `max(ceil(ops/issue), ceil(class/capacity))`
    /// per class, the standard MIIRes formula (Rau '94).
    pub fn mii_res(&self, issued_ops: u32, per_class: &[(ResourceClass, u32)]) -> u32 {
        let mut mii = if self.issue == 0 {
            // No issue capacity: anything > 0 is infeasible; encode as MAX.
            if issued_ops > 0 {
                return u32::MAX;
            }
            0
        } else {
            issued_ops.div_ceil(self.issue)
        };
        for &(class, ops) in per_class {
            if ops == 0 {
                continue;
            }
            let cap = self.capacity(class);
            if cap == 0 {
                return u32::MAX;
            }
            mii = mii.max(ops.div_ceil(cap));
        }
        mii.max(1)
    }
}

impl Add for ResourceTable {
    type Output = ResourceTable;
    fn add(self, rhs: ResourceTable) -> ResourceTable {
        ResourceTable {
            issue: self.issue + rhs.issue,
            alu: self.alu + rhs.alu,
            addr_gen: self.addr_gen + rhs.addr_gen,
        }
    }
}

impl AddAssign for ResourceTable {
    fn add_assign(&mut self, rhs: ResourceTable) {
        *self = *self + rhs;
    }
}

impl fmt::Display for ResourceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RT{{issue:{}, alu:{}, ag:{}}}",
            self.issue, self.alu, self.addr_gen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::Opcode;

    #[test]
    fn cn_table() {
        assert_eq!(ResourceTable::CN.issue, 1);
        assert!(ResourceTable::CN.can_execute(Opcode::Add));
        assert!(ResourceTable::CN.can_execute(Opcode::Load));
    }

    #[test]
    fn union_is_sum() {
        let t = ResourceTable::of_cns(16);
        assert_eq!(t, ResourceTable::CN + ResourceTable::of_cns(15));
        assert_eq!(t.alu, 16);
        assert_eq!(t.capacity(ResourceClass::AddrGen), 16);
    }

    #[test]
    fn mii_res_issue_bound() {
        let t = ResourceTable::of_cns(4);
        // 9 ops on 4 issue slots -> ceil(9/4) = 3
        assert_eq!(t.mii_res(9, &[]), 3);
    }

    #[test]
    fn mii_res_class_bound_dominates() {
        let t = ResourceTable::of_cns(16);
        // 16 ops / 16 issue = 1, but 10 AG ops on 16 AGs = 1; with 2 AGs it
        // would dominate:
        let small = ResourceTable {
            issue: 16,
            alu: 16,
            addr_gen: 2,
        };
        assert_eq!(small.mii_res(16, &[(ResourceClass::AddrGen, 10)]), 5);
        assert_eq!(t.mii_res(16, &[(ResourceClass::AddrGen, 10)]), 1);
    }

    #[test]
    fn mii_res_minimum_is_one() {
        let t = ResourceTable::of_cns(64);
        assert_eq!(t.mii_res(0, &[]), 1);
        assert_eq!(t.mii_res(1, &[(ResourceClass::Alu, 1)]), 1);
    }

    #[test]
    fn mii_res_infeasible_without_capacity() {
        let no_ag = ResourceTable {
            issue: 4,
            alu: 4,
            addr_gen: 0,
        };
        assert_eq!(no_ag.mii_res(4, &[(ResourceClass::AddrGen, 1)]), u32::MAX);
        assert!(!no_ag.can_execute(Opcode::Load));
        assert!(no_ag.can_execute(Opcode::Mul));
    }
}
