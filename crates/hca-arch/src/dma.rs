//! Programmable DMA model (paper §2.2).
//!
//! Each cluster can post an address request straight to the DMA without
//! consuming inter-cluster communication patterns, but "only a limited
//! number of requests can be served at the same time, e.g. 8 requests, thus
//! the compiler must ensure that the amount of simultaneous requests does not
//! exceed that limit". Memory latency is masked by input/output FIFOs of
//! depth equal to the serving time.

use hca_ddg::Ddg;
use serde::{Deserialize, Serialize};

/// DMA engine parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Requests servable simultaneously (per cycle).
    pub ports: u32,
    /// Serving time of one request, in cycles (also the FIFO depth).
    pub latency: u32,
}

impl Default for DmaModel {
    fn default() -> Self {
        // The paper's running example: 8 simultaneous requests; the load
        // latency matches `LatencyModel::default().load`.
        DmaModel {
            ports: 8,
            latency: 8,
        }
    }
}

impl DmaModel {
    /// FIFO depth needed to mask the serving time (the paper sizes the FIFOs
    /// "of depth equal to the serving time").
    #[inline]
    pub fn fifo_depth(&self) -> u32 {
        self.latency
    }

    /// Memory-side resource MII of a DDG: with `mem` requests per iteration
    /// and `ports` servable per cycle, the initiation interval cannot go
    /// below `ceil(mem / ports)`.
    pub fn mii_res_mem(&self, ddg: &Ddg) -> u32 {
        let mem = ddg.count_ops(|o| o.is_memory()) as u32;
        if mem == 0 {
            1
        } else if self.ports == 0 {
            u32::MAX
        } else {
            mem.div_ceil(self.ports).max(1)
        }
    }

    /// True when an II of `ii` keeps the per-cycle request rate within the
    /// port budget for a kernel with `mem_ops` memory operations.
    pub fn admits(&self, mem_ops: u32, ii: u32) -> bool {
        assert!(ii > 0, "II must be positive");
        // Steady state: mem_ops requests every ii cycles.
        mem_ops.div_ceil(ii) <= self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    fn ddg_with_mem(loads: usize, stores: usize) -> Ddg {
        let mut b = DdgBuilder::default();
        let mut vals = Vec::new();
        for _ in 0..loads {
            vals.push(b.node(Opcode::Load));
        }
        for _ in 0..stores {
            let s = b.node(Opcode::Store);
            if let Some(&v) = vals.first() {
                b.flow(v, s);
            }
        }
        b.finish()
    }

    #[test]
    fn default_is_paper_example() {
        let d = DmaModel::default();
        assert_eq!(d.ports, 8);
        assert_eq!(d.fifo_depth(), 8);
    }

    #[test]
    fn mem_mii_divides_by_ports() {
        let d = DmaModel::default();
        assert_eq!(d.mii_res_mem(&ddg_with_mem(10, 0)), 2); // ceil(10/8)
        assert_eq!(d.mii_res_mem(&ddg_with_mem(8, 0)), 1);
        assert_eq!(d.mii_res_mem(&ddg_with_mem(9, 8)), 3); // 17 requests
        assert_eq!(d.mii_res_mem(&ddg_with_mem(0, 0)), 1);
    }

    #[test]
    fn admits_budget() {
        let d = DmaModel::default();
        assert!(d.admits(16, 2)); // 8 per cycle
        assert!(!d.admits(17, 2)); // 9 per cycle
        assert!(d.admits(0, 1));
    }

    #[test]
    fn zero_port_dma_is_infeasible_for_mem() {
        let d = DmaModel {
            ports: 0,
            latency: 1,
        };
        assert_eq!(d.mii_res_mem(&ddg_with_mem(1, 0)), u32::MAX);
        assert_eq!(d.mii_res_mem(&ddg_with_mem(0, 0)), 1);
    }
}
