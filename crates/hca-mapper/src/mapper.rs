//! The level Mapper: orchestrates glue pre-allocation, copy distribution and
//! child-ILI generation for one hierarchy group.

use crate::distribute::{distribute_member, DistributeError, ValueFlow};
use crate::ili_gen::child_ilis;
use crate::prealloc::preallocate_glue_in;
use hca_arch::topology::{ConfiguredWire, GroupTopology, WireSource};
use hca_arch::LevelSpec;
use hca_ddg::NodeId;
use hca_pg::{AssignedPg, Ili, PgNodeKind};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::fmt;

/// Why the Mapper could not lower the assignment onto wires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MapError {}

impl From<DistributeError> for MapError {
    fn from(e: DistributeError) -> Self {
        MapError { message: e.message }
    }
}

/// Mapper metrics for the experiment harnesses and the observability layer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapperStats {
    /// Pre-allocated glue-in wires.
    pub glue_in_wires: usize,
    /// Wires sourced at members (sibling + glue-out traffic).
    pub member_wires: usize,
    /// Worst per-wire value count — the transport term of the final MII.
    pub max_pressure: u32,
    /// Copy-distribution histogram: `copy_hist[p]` counts configured wires
    /// carrying `p` values (glue-in and member wires alike).
    pub copy_hist: Vec<u64>,
    /// The per-member output-wire budget (`spec.out_wires`) the histogram is
    /// measured against — the MUX capacity N/M/K of this level.
    pub out_wire_budget: usize,
}

/// Result of mapping one group.
#[derive(Clone, Debug)]
pub struct MapperOutput {
    /// The configured wires of the group.
    pub group: GroupTopology,
    /// One ILI per member, for the recursion (ignored at the leaves).
    pub child_ilis: Vec<Ili>,
    /// Metrics.
    pub stats: MapperStats,
}

/// Mapper policy knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct MapOptions {
    /// Enable pressure-balancing wire splits (Figure 9b). The HCA driver
    /// turns this on only at the top level: each extra parallel wire
    /// consumes crossbar intake and CN input ports further down, which are
    /// the scarce resources of the deeper levels.
    pub balance_split: bool,
}

/// Map one assigned level onto the group's physical wires.
///
/// `spec` provides the budgets at this level. The driver may clamp
/// `spec.in_wires` to the child level's `glue_in` when the crossbar below
/// accepts fewer wires than the MUXes above can deliver (the paper's K < M
/// case).
pub fn map_level(
    assigned: &AssignedPg,
    spec: LevelSpec,
    opts: MapOptions,
) -> Result<MapperOutput, MapError> {
    map_level_obs(assigned, spec, opts, &hca_obs::Obs::disabled())
}

/// [`map_level`] with observability: phase spans for glue pre-allocation,
/// copy distribution and child-ILI generation. The copy-distribution
/// histogram is returned in [`MapperStats::copy_hist`]; the caller decides
/// which attempts' histograms enter the run metrics (the HCA driver merges
/// only the winning attempt per sub-problem).
pub fn map_level_obs(
    assigned: &AssignedPg,
    spec: LevelSpec,
    opts: MapOptions,
    obs: &hca_obs::Obs,
) -> Result<MapperOutput, MapError> {
    let arity = spec.arity;
    let mut ports_used = vec![0usize; arity];

    // 1. Pre-allocate the glue between the outer and the inner level
    //    (Figure 11) — these ports are no longer available for distribution.
    let prealloc_span = obs.span("mapper", "prealloc");
    let glue_in = preallocate_glue_in(assigned, &mut ports_used);
    drop(prealloc_span);
    if glue_in.len() > spec.glue_in {
        return Err(MapError {
            message: format!(
                "{} consumed glue-in wires exceed budget {}",
                glue_in.len(),
                spec.glue_in
            ),
        });
    }
    for (m, &used) in ports_used.iter().enumerate() {
        if used > spec.in_wires {
            return Err(MapError {
                message: format!(
                    "member {m} consumes {used} ports for glue alone, budget {}",
                    spec.in_wires
                ),
            });
        }
    }

    // 2. Collect per-member value flows from the real patterns.
    let out_count = assigned.pg.output_ids().count();
    if out_count > spec.glue_out {
        return Err(MapError {
            message: format!("{out_count} glue-out wires exceed budget {}", spec.glue_out),
        });
    }
    let mut flows: Vec<FxHashMap<NodeId, ValueFlow>> =
        (0..arity).map(|_| FxHashMap::default()).collect();
    for (&(src, dst), values) in assigned.copies.iter() {
        if values.is_empty() {
            continue;
        }
        let src_node = assigned.pg.node(src);
        if !src_node.kind.is_cluster() {
            continue; // glue-in handled above
        }
        let m = assigned.pg.member_of(src);
        match &assigned.pg.node(dst).kind {
            PgNodeKind::Cluster { member } => {
                for &v in values.iter() {
                    let f = flows[m].entry(v).or_insert_with(|| ValueFlow {
                        value: v,
                        receivers: BTreeSet::new(),
                        slot: None,
                    });
                    f.receivers.insert(*member);
                }
            }
            PgNodeKind::Output { wire, .. } => {
                for &v in values.iter() {
                    let f = flows[m].entry(v).or_insert_with(|| ValueFlow {
                        value: v,
                        receivers: BTreeSet::new(),
                        slot: None,
                    });
                    if let Some(prev) = f.slot {
                        if prev != *wire {
                            return Err(MapError {
                                message: format!(
                                    "value {v} targets two glue-out wires ({prev} and {wire})"
                                ),
                            });
                        }
                    }
                    f.slot = Some(*wire);
                }
            }
            PgNodeKind::Input { .. } => {
                return Err(MapError {
                    message: format!("real pattern into an input node from member {m}"),
                });
            }
        }
    }

    // 3. Distribute each member's flows over its output wires. Receivers'
    //    port budgets are shared across members, so reserve one port per
    //    not-yet-distributed member that must still reach each receiver.
    let distribute_span = obs.span("mapper", "distribute");
    let mut group = GroupTopology { wires: glue_in };
    let mut max_pressure = group
        .wires
        .iter()
        .map(ConfiguredWire::pressure)
        .max()
        .unwrap_or(0);
    let mut member_wires = 0usize;
    for m in 0..arity {
        let mut member_flows: Vec<ValueFlow> = flows[m].values().cloned().collect();
        member_flows.sort_by_key(|f| f.value);
        let limits: Vec<usize> = (0..arity)
            .map(|r| {
                let future = (m + 1..arity)
                    .filter(|&m2| flows[m2].values().any(|f| f.receivers.contains(&r)))
                    .count();
                spec.in_wires.saturating_sub(future)
            })
            .collect();
        let drafts = distribute_member(
            m,
            &member_flows,
            spec.out_wires,
            &mut ports_used,
            &limits,
            opts.balance_split,
        )?;
        for d in drafts {
            let receivers: Vec<usize> = d.receivers().into_iter().collect();
            let wire = ConfiguredWire {
                src: WireSource::Member(m),
                receivers,
                to_parent: d.exits_to_parent(),
                values: d.values(),
            };
            max_pressure = max_pressure.max(wire.pressure());
            member_wires += 1;
            group.wires.push(wire);
        }
    }

    drop(distribute_span);

    let mut copy_hist: Vec<u64> = Vec::new();
    for w in &group.wires {
        let p = w.pressure() as usize;
        if copy_hist.len() <= p {
            copy_hist.resize(p + 1, 0);
        }
        copy_hist[p] += 1;
    }
    let stats = MapperStats {
        glue_in_wires: group
            .wires
            .iter()
            .filter(|w| w.src == WireSource::Parent)
            .count(),
        member_wires,
        max_pressure,
        copy_hist,
        out_wire_budget: spec.out_wires,
    };
    let ili_span = obs.span("mapper", "ili_gen");
    let child_ilis = child_ilis(&group, arity);
    drop(ili_span);
    Ok(MapperOutput {
        group,
        child_ilis,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{IliWire, Pg, PgNodeId};

    fn spec(arity: usize, inw: usize, outw: usize, gin: usize, gout: usize) -> LevelSpec {
        LevelSpec {
            arity,
            in_wires: inw,
            out_wires: outw,
            glue_in: gin,
            glue_out: gout,
        }
    }

    /// Figure 9 reconstruction: broadcast x (0→{1,2}) and z (3→{0,1}),
    /// point-to-point a, b, c (0→3), k,h on a shared arc (1→3).
    #[test]
    fn figure9_full_mapping() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let a = b.node(Opcode::Add);
        let bb = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        let k = b.node(Opcode::Add);
        let h = b.node(Opcode::Add);
        let z = b.node(Opcode::Add);
        let _ddg = b.finish();

        let pg = Pg::complete(4, ResourceTable::of_cns(16));
        let mut apg = AssignedPg::new(pg);
        // Copies installed directly, mirroring the PG̅ of Figure 9a.
        apg.copies.insert((PgNodeId(0), PgNodeId(1)), vec![x]);
        apg.copies.insert((PgNodeId(0), PgNodeId(2)), vec![x]);
        apg.copies
            .insert((PgNodeId(0), PgNodeId(3)), vec![a, bb, c]);
        apg.copies.insert((PgNodeId(1), PgNodeId(3)), vec![k, h]);
        apg.copies.insert((PgNodeId(3), PgNodeId(0)), vec![z]);
        apg.copies.insert((PgNodeId(3), PgNodeId(1)), vec![z]);

        let out = map_level(
            &apg,
            spec(4, 4, 4, 0, 0),
            MapOptions {
                balance_split: true,
            },
        )
        .unwrap();
        // Member 0: x broadcast on one wire, a/b/c spread over three.
        let m0: Vec<&ConfiguredWire> = out
            .group
            .wires
            .iter()
            .filter(|w| w.src == WireSource::Member(0))
            .collect();
        assert_eq!(m0.len(), 4);
        let bc = m0.iter().find(|w| w.values == vec![x]).unwrap();
        assert_eq!(bc.receivers, vec![1, 2]);
        let p2p: Vec<_> = m0.iter().filter(|w| w.receivers == vec![3]).collect();
        assert_eq!(p2p.len(), 3, "a, b, c distributed over three wires");
        assert!(p2p.iter().all(|w| w.pressure() == 1));
        // ILI of subproblem 3: four input lines (a | b | c | k,h), z leaves.
        let ili3 = &out.child_ilis[3];
        assert_eq!(ili3.inputs.len(), 4);
        assert_eq!(ili3.outputs.len(), 1);
        assert_eq!(ili3.outputs[0].values, vec![z]);
        assert_eq!(out.stats.max_pressure, 2); // the k,h wire
    }

    #[test]
    fn glue_in_and_out_roundtrip() {
        // One external value consumed by member 1; one internal value k
        // leaving on output wire 0 from member 0.
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Add);
        let k = b.node(Opcode::Add);
        let u = b.node(Opcode::Add);
        b.flow(ext, u);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&hca_pg::Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![IliWire::new(vec![k])],
        });
        let inp = pg.input_carrying(ext).unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(ext, inp);
        apg.assign(u, PgNodeId(1));
        apg.assign(k, PgNodeId(0));
        apg.derive_copies(&ddg, None);

        let out = map_level(&apg, spec(2, 2, 1, 2, 2), MapOptions::default()).unwrap();
        assert_eq!(out.stats.glue_in_wires, 1);
        let glue_out: Vec<_> = out.group.wires.iter().filter(|w| w.to_parent).collect();
        assert_eq!(glue_out.len(), 1);
        assert_eq!(glue_out[0].src, WireSource::Member(0));
        assert_eq!(glue_out[0].values, vec![k]);
        // Child ILI of member 1 sees the parent wire as its input.
        assert_eq!(out.child_ilis[1].inputs.len(), 1);
        assert_eq!(out.child_ilis[1].inputs[0].values, vec![ext]);
    }

    #[test]
    fn glue_budget_violations_detected() {
        let mut b = DdgBuilder::default();
        let e1 = b.node(Opcode::Add);
        let e2 = b.node(Opcode::Add);
        let u = b.node(Opcode::Add);
        b.flow(e1, u);
        b.flow(e2, u);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&hca_pg::Ili {
            inputs: vec![IliWire::new(vec![e1]), IliWire::new(vec![e2])],
            outputs: vec![],
        });
        let i1 = pg.input_carrying(e1).unwrap();
        let i2 = pg.input_carrying(e2).unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(e1, i1);
        apg.assign(e2, i2);
        apg.assign(u, PgNodeId(0));
        apg.derive_copies(&ddg, None);
        // Budget of 1 glue-in wire but 2 consumed.
        let err = map_level(&apg, spec(2, 4, 2, 1, 0), MapOptions::default()).unwrap_err();
        assert!(err.message.contains("glue-in"), "{err}");
        // Enough budget → fine.
        assert!(map_level(&apg, spec(2, 4, 2, 2, 0), MapOptions::default()).is_ok());
    }

    #[test]
    fn pressure_reported() {
        let mut b = DdgBuilder::default();
        let vs: Vec<_> = (0..3).map(|_| b.node(Opcode::Add)).collect();
        let _ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.copies.insert((PgNodeId(0), PgNodeId(1)), vs.clone());
        // Single output wire: all three values share it.
        let out = map_level(&apg, spec(2, 4, 1, 0, 0), MapOptions::default()).unwrap();
        assert_eq!(out.stats.max_pressure, 3);
        assert_eq!(out.stats.member_wires, 1);
    }

    #[test]
    fn value_on_two_output_wires_rejected() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let _ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&hca_pg::Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k]), IliWire::new(vec![k])],
        });
        let outs: Vec<PgNodeId> = pg.output_ids().collect();
        let mut apg = AssignedPg::new(pg);
        apg.copies.insert((PgNodeId(0), outs[0]), vec![k]);
        apg.copies.insert((PgNodeId(0), outs[1]), vec![k]);
        let err = map_level(&apg, spec(2, 4, 2, 0, 2), MapOptions::default()).unwrap_err();
        assert!(err.message.contains("two glue-out"), "{err}");
    }
}
