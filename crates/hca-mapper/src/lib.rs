//! # hca-mapper — lowering Pattern-Graph copies onto MUX wires
//!
//! The Mapper is the second half of each hierarchical step (paper §3–§4.1):
//! it "takes the assigned DDG, the PG and a complete description of the
//! Machine Model as input … and maps the PG onto the Machine Model,
//! compatibly with available real communication paths and being driven by a
//! configurable cost function, e.g. copy balancing, prioritization of
//! parallel copies".
//!
//! Concretely, for one hierarchy group it:
//!
//! 1. **pre-allocates** the glue wires mandated by the group's own
//!    Inter-Level Interface — "these connections must be preallocated by the
//!    Mapper, being the glue between the outer and the inner level"
//!    (Figure 11);
//! 2. **distributes** the sibling copies over each member's output wires —
//!    broadcast values share a single line (Figure 9b shows one wire
//!    carrying both `x` and `z`), point-to-point values spread over the
//!    remaining wires to minimise per-wire pressure (`a`,`b`,`c` over three
//!    wires), all without exceeding any receiver's input ports;
//! 3. **emits one ILI per member** (Figure 9c) so the recursion can descend.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distribute;
pub mod ili_gen;
pub mod mapper;
pub mod prealloc;

pub use mapper::{map_level, map_level_obs, MapError, MapOptions, MapperOutput, MapperStats};
