//! Copy distribution: pack one member's outgoing value flows onto its
//! physical output wires (paper §4.1, Figure 9).
//!
//! Inputs are *value flows* — value, sibling receiver set, optional glue
//! slot (ILI output wire) — and the budgets: output wires of the member and
//! a per-receiver input-port limit (already charged with pre-allocated glue
//! wires and with ports *reserved* for members not yet distributed). The
//! packing heuristic follows the paper's description:
//!
//! * flows bound to one glue slot share one mandatory wire (unary fan-in
//!   upward); a single wire may feed several slots — the MUX stage fans a
//!   member's output onto multiple upward wires;
//! * remaining flows start one wire per distinct receiver set (broadcast
//!   sets share a line, like `x` and `z` in Figure 9b after merging);
//! * over budget → merge the pair costing the fewest extra input ports,
//!   preferring low combined pressure;
//! * under budget and `allow_split` → split the heaviest point-to-point
//!   wire to spread values "over three wires" (Figure 9b) while the
//!   receivers still have ports. The driver only enables this at the top
//!   level, where receiver port budgets are wide; deeper levels keep wires
//!   merged because every extra wire consumes scarce crossbar/CN ports
//!   below.

use hca_ddg::NodeId;
use std::collections::BTreeSet;

/// One value leaving a member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueFlow {
    /// The value (its producing DDG node).
    pub value: NodeId,
    /// Sibling members that must receive it.
    pub receivers: BTreeSet<usize>,
    /// Glue slot (ILI output-wire index) the value must also leave on.
    pub slot: Option<usize>,
}

/// A wire under construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireDraft {
    /// Flows packed on the wire.
    pub flows: Vec<ValueFlow>,
}

impl WireDraft {
    /// Union of the flows' receiver sets.
    pub fn receivers(&self) -> BTreeSet<usize> {
        self.flows
            .iter()
            .flat_map(|f| f.receivers.iter().copied())
            .collect()
    }

    /// The glue slots the wire feeds (possibly several).
    pub fn slots(&self) -> BTreeSet<usize> {
        self.flows.iter().filter_map(|f| f.slot).collect()
    }

    /// Does the wire continue to the parent level?
    pub fn exits_to_parent(&self) -> bool {
        self.flows.iter().any(|f| f.slot.is_some())
    }

    /// Values carried (time-multiplexing pressure).
    pub fn pressure(&self) -> usize {
        self.flows.len()
    }

    /// Values in flow order.
    pub fn values(&self) -> Vec<NodeId> {
        self.flows.iter().map(|f| f.value).collect()
    }
}

/// Why distribution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributeError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DistributeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DistributeError {}

/// Charge the layout's ports into `ports`; error on the first receiver whose
/// effective limit is exceeded.
fn charge(
    wires: &[WireDraft],
    ports: &mut [usize],
    limit: &[usize],
) -> Result<(), DistributeError> {
    for w in wires {
        for r in w.receivers() {
            ports[r] += 1;
            if ports[r] > limit[r] {
                return Err(DistributeError {
                    message: format!(
                        "receiver {r} needs {} input ports, budget {}",
                        ports[r], limit[r]
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Pack `flows` onto at most `out_wires` wires.
///
/// `ports_used` is the group-wide port usage so far (this call charges what
/// it consumes); `port_limit[r]` is receiver `r`'s effective budget — its
/// physical ports minus the ports reserved for members distributed later.
pub fn distribute_member(
    member: usize,
    flows: &[ValueFlow],
    out_wires: usize,
    ports_used: &mut [usize],
    port_limit: &[usize],
    allow_split: bool,
) -> Result<Vec<WireDraft>, DistributeError> {
    if flows.is_empty() {
        return Ok(Vec::new());
    }
    if out_wires == 0 {
        return Err(DistributeError {
            message: format!("member {member} has flows but zero output wires"),
        });
    }

    // Phase A: one mandatory wire per glue slot (unary fan-in upward).
    let mut wires: Vec<WireDraft> = Vec::new();
    let mut slots: Vec<usize> = flows.iter().filter_map(|f| f.slot).collect();
    slots.sort_unstable();
    slots.dedup();
    for &s in &slots {
        wires.push(WireDraft {
            flows: flows
                .iter()
                .filter(|f| f.slot == Some(s))
                .cloned()
                .collect(),
        });
    }
    // Phase B: one wire per remaining value. Keeping values on separate
    // wires for as long as the budgets allow matters downstream: every wire
    // is a *single* co-location/fan-in unit at the child level, so eagerly
    // merged wires would force unrelated producers onto one child cluster
    // (`outNode_MaxIn`). Sharing is reintroduced below only where the wire
    // or port budgets demand it — the paper's "prioritization of parallel
    // copies".
    for f in flows.iter().filter(|f| f.slot.is_none()) {
        wires.push(WireDraft {
            flows: vec![f.clone()],
        });
    }

    // Phase C: merge down to the output-wire budget (any pair may merge —
    // a wire can feed several glue slots and several sibling receivers).
    // Prefer merges that *save* receiver ports, then low pressure.
    while wires.len() > out_wires {
        let mut best: Option<(isize, usize, usize, usize)> = None; // (Δports, pressure, i, j)
        for i in 0..wires.len() {
            for j in i + 1..wires.len() {
                let ri = wires[i].receivers();
                let rj = wires[j].receivers();
                let common = ri.intersection(&rj).count() as isize;
                let pressure = wires[i].pressure() + wires[j].pressure();
                let key = (-common, pressure, i, j);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let Some((_, _, i, j)) = best else {
            unreachable!("any two wires are mergeable");
        };
        let merged = wires.remove(j);
        wires[i].flows.extend(merged.flows);
    }

    // Phase E: resolve port overflows by further merging wires that share
    // receivers (merging is the only within-member move that frees ports).
    loop {
        let mut trial_ports = ports_used.to_vec();
        match charge(&wires, &mut trial_ports, port_limit) {
            Ok(()) => break,
            Err(e) => {
                let mut best: Option<(usize, usize, usize)> = None; // (-saved, i, j)
                for i in 0..wires.len() {
                    for j in i + 1..wires.len() {
                        let ri = wires[i].receivers();
                        let rj = wires[j].receivers();
                        let common = ri.intersection(&rj).count();
                        if common == 0 {
                            continue;
                        }
                        let key = (usize::MAX - common, i, j);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((_, i, j)) = best else {
                    return Err(e);
                };
                let merged = wires.remove(j);
                wires[i].flows.extend(merged.flows);
            }
        }
    }

    // Phase D: use spare wires to spread pressure (Figure 9b: a, b, c over
    // three wires) where the driver allows it.
    while allow_split && wires.len() < out_wires {
        let mut trial_ports = ports_used.to_vec();
        charge(&wires, &mut trial_ports, port_limit).expect("layout was feasible above");
        // Candidate: the highest-pressure wire with ≥ 2 slot-free flows
        // whose receivers can all afford one more port.
        let mut cand: Option<(usize, usize)> = None; // (pressure, index), max
        for (ix, w) in wires.iter().enumerate() {
            let movable: Vec<&ValueFlow> = w.flows.iter().filter(|f| f.slot.is_none()).collect();
            if movable.is_empty() || w.pressure() < 2 {
                continue;
            }
            if movable.len() == w.flows.len() && movable.len() < 2 {
                continue;
            }
            let afford = movable
                .iter()
                .flat_map(|f| f.receivers.iter())
                .all(|&r| trial_ports[r] < port_limit[r]);
            if afford && cand.is_none_or(|(p, _)| w.pressure() > p) {
                cand = Some((w.pressure(), ix));
            }
        }
        let Some((_, ix)) = cand else { break };
        let movable_ix: Vec<usize> = wires[ix]
            .flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.slot.is_none())
            .map(|(i, _)| i)
            .collect();
        // Move the later half of the slot-free flows onto a fresh wire.
        let take = (movable_ix.len() / 2).max(1).min(movable_ix.len());
        let chosen: Vec<usize> = movable_ix[movable_ix.len() - take..].to_vec();
        if chosen.len() == wires[ix].flows.len() {
            break; // would leave the original wire empty
        }
        let mut moved = Vec::with_capacity(take);
        for &i in chosen.iter().rev() {
            moved.push(wires[ix].flows.remove(i));
        }
        moved.reverse();
        wires.push(WireDraft { flows: moved });
        let mut trial = ports_used.to_vec();
        if charge(&wires, &mut trial, port_limit).is_err() {
            let w = wires.pop().expect("just pushed");
            wires[ix].flows.extend(w.flows);
            break;
        }
    }

    charge(&wires, ports_used, port_limit)?;
    Ok(wires)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(v: u32, rec: &[usize], slot: Option<usize>) -> ValueFlow {
        ValueFlow {
            value: NodeId(v),
            receivers: rec.iter().copied().collect(),
            slot,
        }
    }

    fn lim(n: usize, l: usize) -> Vec<usize> {
        vec![l; n]
    }

    #[test]
    fn empty_flows_use_no_wires() {
        let mut ports = vec![0; 4];
        let w = distribute_member(0, &[], 4, &mut ports, &lim(4, 4), true).unwrap();
        assert!(w.is_empty());
        assert_eq!(ports, vec![0; 4]);
    }

    #[test]
    fn figure9_point_to_point_spread() {
        // a, b, c all to receiver 3, four output wires and wide ports:
        // spread over three wires (max pressure 1).
        let flows = [
            flow(0, &[3], None),
            flow(1, &[3], None),
            flow(2, &[3], None),
        ];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 4, &mut ports, &lim(4, 4), true).unwrap();
        assert_eq!(wires.len(), 3);
        assert!(wires.iter().all(|w| w.pressure() == 1));
        assert_eq!(ports[3], 3);
    }

    #[test]
    fn values_stay_on_separate_wires_when_budgets_allow() {
        // Per-value wires by default (minimal downstream co-location), even
        // without the split permission — splitting only matters once merges
        // have happened.
        let flows = [
            flow(0, &[3], None),
            flow(1, &[3], None),
            flow(2, &[3], None),
        ];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 4, &mut ports, &lim(4, 4), false).unwrap();
        assert_eq!(wires.len(), 3);
        assert_eq!(ports[3], 3);
        // Tight ports force the values back onto one line.
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 4, &mut ports, &lim(4, 1), false).unwrap();
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].pressure(), 3);
        assert_eq!(ports[3], 1);
    }

    #[test]
    fn figure9_broadcasts_share_one_line_under_budget() {
        // x → {1,2}, z → {1,3}, plus a,b,c → {3}; only 2 output wires.
        let flows = [
            flow(10, &[1, 2], None),
            flow(11, &[1, 3], None),
            flow(0, &[3], None),
            flow(1, &[3], None),
            flow(2, &[3], None),
        ];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 2, &mut ports, &lim(4, 4), true).unwrap();
        assert_eq!(wires.len(), 2);
        let total: usize = wires.iter().map(|w| w.pressure()).sum();
        assert_eq!(total, 5);
        assert!(ports.iter().all(|&p| p <= 4));
    }

    #[test]
    fn glue_slot_values_stay_together() {
        let flows = [
            flow(3, &[], Some(0)),
            flow(4, &[], Some(0)),
            flow(5, &[2], None),
        ];
        let mut ports = vec![0; 4];
        let wires = distribute_member(1, &flows, 2, &mut ports, &lim(4, 4), true).unwrap();
        assert_eq!(wires.len(), 2);
        let glue = wires.iter().find(|w| w.exits_to_parent()).unwrap();
        let mut vals = glue.values();
        vals.sort_unstable();
        assert_eq!(vals, vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn one_wire_can_feed_multiple_glue_slots() {
        // A CN (single output wire) whose two values leave on two different
        // upward wires: the MUX stage fans the one output out.
        let flows = [flow(0, &[], Some(0)), flow(1, &[], Some(1))];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 1, &mut ports, &lim(4, 4), true).unwrap();
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].slots(), [0, 1].into_iter().collect());
        assert!(wires[0].exits_to_parent());
    }

    #[test]
    fn glue_wire_shares_with_sibling_receivers() {
        let flows = [flow(7, &[2], Some(0))];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 1, &mut ports, &lim(4, 4), true).unwrap();
        assert_eq!(wires.len(), 1);
        assert!(wires[0].exits_to_parent());
        assert_eq!(wires[0].receivers(), [2].into_iter().collect());
    }

    #[test]
    fn port_overflow_resolved_by_merging() {
        let flows = [flow(0, &[1], None), flow(1, &[1], None)];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 2, &mut ports, &lim(4, 1), true).unwrap();
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].pressure(), 2);
        assert_eq!(ports[1], 1);
    }

    #[test]
    fn port_overflow_unresolvable_errors() {
        let flows = [flow(0, &[1], None)];
        let mut ports = vec![0, 1, 0, 0];
        let err = distribute_member(0, &flows, 2, &mut ports, &lim(4, 1), true).unwrap_err();
        assert!(err.message.contains("input ports"), "{err}");
    }

    #[test]
    fn reserved_ports_respected() {
        // Receiver 1 has 3 physical ports but 2 are reserved for later
        // members: our two flows must share one wire.
        let flows = [flow(0, &[1], None), flow(1, &[1], None)];
        let mut ports = vec![0; 4];
        let mut limits = lim(4, 3);
        limits[1] = 1;
        let wires = distribute_member(0, &flows, 4, &mut ports, &limits, true).unwrap();
        assert_eq!(wires.len(), 1);
    }

    #[test]
    fn splitting_respects_receiver_ports() {
        let flows = [
            flow(0, &[1], None),
            flow(1, &[1], None),
            flow(2, &[1], None),
        ];
        let mut ports = vec![0; 4];
        let wires = distribute_member(0, &flows, 3, &mut ports, &lim(4, 1), true).unwrap();
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].pressure(), 3);
    }

    #[test]
    fn zero_out_wires_with_flows_is_an_error() {
        let flows = [flow(0, &[1], None)];
        let mut ports = vec![0; 2];
        assert!(distribute_member(0, &flows, 0, &mut ports, &lim(2, 2), true).is_err());
    }
}
