//! Pre-allocation of inter-level glue wires (paper §4.1, Figure 11).
//!
//! "When the Mapper has to deal with PGs including special nodes … it must
//! consider that there are incoming/outgoing connections from/to the outer
//! level that cannot be used for copy distribution, partially limiting the
//! reconfiguration space. These connections must be preallocated by the
//! Mapper, being the glue between the outer and the inner level."

use hca_arch::topology::{ConfiguredWire, WireSource};
use hca_pg::{AssignedPg, PgNodeKind};

/// Build the pre-allocated glue-**in** wires: one [`ConfiguredWire`] with
/// [`WireSource::Parent`] per ILI input wire that has at least one consuming
/// member, charging the consumed input ports into `ports_used`.
///
/// Returns the wires ordered by ILI wire index, so the correspondence
/// between the parent's ILI and the group's configured wires is positional.
pub fn preallocate_glue_in(assigned: &AssignedPg, ports_used: &mut [usize]) -> Vec<ConfiguredWire> {
    let mut inputs: Vec<(usize, Vec<hca_ddg::NodeId>, Vec<usize>)> = Vec::new();
    for inp in assigned.pg.input_ids() {
        let PgNodeKind::Input { wire, values } = &assigned.pg.node(inp).kind else {
            unreachable!("input_ids yields input nodes");
        };
        let mut receivers: Vec<usize> = assigned
            .copies
            .iter()
            .filter(|(&(src, _), vs)| src == inp && !vs.is_empty())
            .map(|(&(_, dst), _)| assigned.pg.member_of(dst))
            .collect();
        receivers.sort_unstable();
        receivers.dedup();
        if receivers.is_empty() {
            continue; // nobody consumes this wire inside the group
        }
        inputs.push((*wire, values.clone(), receivers));
    }
    inputs.sort_by_key(|(wire, _, _)| *wire);
    inputs
        .into_iter()
        .map(|(_, values, receivers)| {
            for &r in &receivers {
                ports_used[r] += 1;
            }
            ConfiguredWire {
                src: WireSource::Parent,
                receivers,
                to_parent: false,
                values,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, NodeId, Opcode};
    use hca_pg::{Ili, IliWire, Pg, PgNodeId};

    #[test]
    fn glue_in_wires_follow_consumption() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add); // external
        let z = b.node(Opcode::Add); // external, unconsumed inside
        let u = b.node(Opcode::Add);
        b.flow(x, u);
        let ddg = b.finish();
        let mut pg = Pg::complete(4, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![x]), IliWire::new(vec![z])],
            outputs: vec![],
        });
        let inp_x = pg.input_carrying(x).unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, inp_x);
        apg.assign(u, PgNodeId(2));
        apg.derive_copies(&ddg, None);

        let mut ports = vec![0usize; 4];
        let wires = preallocate_glue_in(&apg, &mut ports);
        // Only x's wire is consumed (by member 2); z's wire is dropped.
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].src, WireSource::Parent);
        assert_eq!(wires[0].receivers, vec![2]);
        assert_eq!(wires[0].values, vec![x]);
        assert_eq!(ports, vec![0, 0, 1, 0]);
        let _ = NodeId(0);
    }

    #[test]
    fn broadcast_glue_in_charges_every_consumer() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let u = b.node(Opcode::Add);
        let v = b.node(Opcode::Add);
        b.flow(x, u);
        b.flow(x, v);
        let ddg = b.finish();
        let mut pg = Pg::complete(4, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![x])],
            outputs: vec![],
        });
        let inp = pg.input_carrying(x).unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, inp);
        apg.assign(u, PgNodeId(0));
        apg.assign(v, PgNodeId(3));
        apg.derive_copies(&ddg, None);

        let mut ports = vec![0usize; 4];
        let wires = preallocate_glue_in(&apg, &mut ports);
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].receivers, vec![0, 3]);
        assert_eq!(ports, vec![1, 0, 0, 1]);
    }
}
