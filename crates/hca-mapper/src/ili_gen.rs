//! Child ILI generation (paper §4.1, Figure 9c).
//!
//! "The Mapper generates also four ILI (ILI₀,₀ … ILI₀,₃), each of them
//! reporting the input/output copies between level 0 and 0,i": for member
//! `m`, every wire `m` listens to becomes one ILI input wire (with the full
//! value list the wire carries), and every wire sourced at `m` becomes one
//! ILI output wire.

use hca_arch::topology::{GroupTopology, WireSource};
use hca_pg::{Ili, IliWire};

/// Derive the ILIs of all `arity` members from the group's configured wires.
pub fn child_ilis(group: &GroupTopology, arity: usize) -> Vec<Ili> {
    let mut out = vec![Ili::default(); arity];
    for w in &group.wires {
        for &r in &w.receivers {
            out[r].inputs.push(IliWire::new(w.values.clone()));
        }
        if let WireSource::Member(m) = w.src {
            out[m].outputs.push(IliWire::new(w.values.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::topology::ConfiguredWire;
    use hca_ddg::NodeId;

    #[test]
    fn figure9c_ilis() {
        // Reconstruct Figure 9(b)→(c): member 3 receives a, b, c on three
        // wires and k,h on one; it sends z up… here z goes to members 0 and 1
        // to exercise both directions.
        let v = NodeId;
        let mut g = GroupTopology::default();
        for val in [0u32, 1, 2] {
            g.wires.push(ConfiguredWire {
                src: WireSource::Member(0),
                receivers: vec![3],
                to_parent: false,
                values: vec![v(val)],
            });
        }
        g.wires.push(ConfiguredWire {
            src: WireSource::Member(1),
            receivers: vec![3],
            to_parent: false,
            values: vec![v(10), v(11)], // k, h share a wire
        });
        g.wires.push(ConfiguredWire {
            src: WireSource::Member(3),
            receivers: vec![0, 1],
            to_parent: false,
            values: vec![v(20)], // z broadcast
        });
        let ilis = child_ilis(&g, 4);
        assert_eq!(ilis[3].inputs.len(), 4);
        assert_eq!(ilis[3].outputs.len(), 1);
        assert_eq!(ilis[3].outputs[0].values, vec![v(20)]);
        assert_eq!(ilis[3].inputs[3].values, vec![v(10), v(11)]);
        // Broadcast lands as one input wire on each receiver.
        assert_eq!(ilis[0].inputs.len(), 1);
        assert_eq!(ilis[1].inputs.len(), 1);
        assert_eq!(ilis[0].inputs[0].values, vec![v(20)]);
        // Member 0 sends three wires.
        assert_eq!(ilis[0].outputs.len(), 3);
        assert!(ilis[2].is_empty());
    }

    #[test]
    fn parent_wires_become_inputs_not_outputs() {
        let mut g = GroupTopology::default();
        g.wires.push(ConfiguredWire {
            src: WireSource::Parent,
            receivers: vec![1],
            to_parent: false,
            values: vec![NodeId(5)],
        });
        let ilis = child_ilis(&g, 2);
        assert_eq!(ilis[1].inputs.len(), 1);
        assert!(ilis.iter().all(|i| i.outputs.is_empty()));
    }
}
