//! Property-based tests of the copy-distribution core: for any random flow
//! set and budget, the packing must conserve values, respect every budget,
//! and keep each glue slot on exactly one wire.

use hca_ddg::NodeId;
use hca_mapper::distribute::{distribute_member, ValueFlow};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct Case {
    flows: Vec<ValueFlow>,
    out_wires: usize,
    in_wires: usize,
    arity: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..6, 1usize..8, 1usize..8).prop_flat_map(|(arity, out_wires, in_wires)| {
        let flow = (
            proptest::collection::btree_set(0..arity, 0..arity),
            proptest::option::weighted(0.3, 0usize..3),
        );
        proptest::collection::vec(flow, 0..12).prop_map(move |raw| {
            let flows = raw
                .into_iter()
                .enumerate()
                .map(|(i, (receivers, slot))| ValueFlow {
                    value: NodeId(i as u32),
                    receivers: receivers.into_iter().collect::<BTreeSet<_>>(),
                    slot,
                })
                // Drop degenerate flows that go nowhere.
                .filter(|f| !f.receivers.is_empty() || f.slot.is_some())
                .collect();
            Case {
                flows,
                out_wires,
                in_wires,
                arity,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn distribution_conserves_values_and_budgets(case in case_strategy()) {
        let mut ports = vec![0usize; case.arity];
        let limits = vec![case.in_wires; case.arity];
        let Ok(wires) = distribute_member(
            0,
            &case.flows,
            case.out_wires,
            &mut ports,
            &limits,
            true,
        ) else {
            // Failure is legitimate when budgets are too tight; nothing to
            // check beyond "ports not corrupted past limits".
            return Ok(());
        };

        // Output-wire budget.
        prop_assert!(wires.len() <= case.out_wires);

        // Every flow's value appears on exactly one wire, with its
        // receivers covered by that wire's receiver set.
        for f in &case.flows {
            let holders: Vec<_> = wires
                .iter()
                .filter(|w| w.values().contains(&f.value))
                .collect();
            prop_assert_eq!(holders.len(), 1, "value {:?}", f.value);
            let rec = holders[0].receivers();
            for r in &f.receivers {
                prop_assert!(rec.contains(r));
            }
            if let Some(slot) = f.slot {
                prop_assert!(holders[0].slots().contains(&slot));
            }
        }

        // Each glue slot lives on exactly one wire (unary fan-in upward).
        let mut slots: Vec<usize> = case.flows.iter().filter_map(|f| f.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        for s in slots {
            let n = wires.iter().filter(|w| w.slots().contains(&s)).count();
            prop_assert_eq!(n, 1, "slot {}", s);
        }

        // Port accounting matches the layout and stays within limits.
        for (r, &used) in ports.iter().enumerate() {
            let expect = wires.iter().filter(|w| w.receivers().contains(&r)).count();
            prop_assert_eq!(used, expect, "receiver {}", r);
            prop_assert!(used <= case.in_wires);
        }
    }

    #[test]
    fn split_permission_never_changes_feasibility(case in case_strategy()) {
        let run = |split: bool| {
            let mut ports = vec![0usize; case.arity];
            let limits = vec![case.in_wires; case.arity];
            distribute_member(0, &case.flows, case.out_wires, &mut ports, &limits, split)
                .is_ok()
        };
        // Splitting is a quality knob: it must never turn a feasible case
        // infeasible or vice versa.
        prop_assert_eq!(run(true), run(false));
    }
}
