//! # hca-repro — umbrella crate
//!
//! Re-exports the whole workspace reproducing *"Hierarchical Cluster
//! Assignment for Coarse-Grain Reconfigurable Coprocessors"* (IPPS 2007)
//! under one roof, so downstream users depend on a single crate and the
//! repository-level `examples/` and `tests/` exercise the public API exactly
//! as a user would.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use hca_arch as arch;
pub use hca_check as check;
pub use hca_core as hca;
pub use hca_ddg as ddg;
pub use hca_kernels as kernels;
pub use hca_mapper as mapper;
pub use hca_pg as pg;
pub use hca_sched as sched;
pub use hca_see as see;
pub use hca_sim as sim;
