//! Offline stand-in for the `rustc-hash` crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the handful of third-party APIs it uses (see
//! `vendor/README.md`). This crate provides `FxHashMap`/`FxHashSet`: a
//! `HashMap`/`HashSet` over a fast non-cryptographic multiply-xor hasher in
//! the spirit of the Firefox/rustc "Fx" hash.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (a 64-bit prime-ish mix constant).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fast non-cryptographic hasher: rotate, xor, multiply per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        m.insert((1, 2), vec![3]);
        assert_eq!(m[&(1, 2)], vec![3]);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut f = FxHasher::default();
            f.write(bytes);
            f.finish()
        };
        assert_eq!(h(b"abcdef"), h(b"abcdef"));
        assert_ne!(h(b"abcdef"), h(b"abcdeg"));
    }
}
