//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A minimal wall-clock timing harness with criterion's API shape: no
//! statistical analysis, no HTML reports, no `target/criterion` state —
//! each benchmark runs `sample_size` timed samples and prints
//! median/min/max to stdout. Honours the standard `--bench` /
//! `--test` harness flags and treats any other positional argument as a
//! substring filter on benchmark names, so `cargo bench <filter>` works.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state, stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    /// `cargo test --benches` runs each bench once for smoke coverage.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--profile-time" => {}
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.full_name(), self.sample_size, |b| f(b));
        self
    }

    fn run_one<F>(&self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode {
            1
        } else {
            sample_size.max(1)
        };
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            times.push(bencher.elapsed);
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!(
            "bench {name:<40} median {median:>12?} (min {:?}, max {:?}, n={samples})",
            times[0],
            times[times.len() - 1],
        );
    }
}

/// A named group sharing configuration, stand-in for
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, |b| f(b, input));
        self
    }

    /// Close the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, stand-in for `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` pair.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id (the group supplies the function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Timing callback handle, stand-in for `criterion::Bencher`.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one sample of the routine (criterion times many iterations per
    /// sample; this stand-in times exactly one).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        black_box(out);
    }
}

/// Declare a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_filters() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("match".into()),
            test_mode: true,
        };
        let mut ran = 0;
        c.bench_function("matching_name", |b| b.iter(|| ran += 1));
        c.bench_function("other", |b| b.iter(|| ran += 100));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).full_name(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).full_name(), "8");
    }
}
