//! Offline stand-in for the `smallvec` crate (see `vendor/README.md`).
//!
//! Backed by a plain `Vec` — no inline storage, but the full `SmallVec<[T; N]>`
//! type-level API this workspace uses. The inline-capacity parameter is
//! carried in the type for signature compatibility and ignored at runtime.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing-array marker: `SmallVec<[T; N]>` takes an array type parameter.
pub trait Array {
    /// Element type of the array.
    type Item;
    /// Inline capacity (unused by this stand-in).
    const CAP: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
}

/// Vec-backed replacement for `smallvec::SmallVec`.
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Empty vector.
    #[inline]
    pub const fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Empty vector with room for `cap` elements.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Borrow as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// Borrow as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }

    /// Convert into the backing `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// Build from a `Vec` without copying.
    #[inline]
    pub fn from_vec(v: Vec<A::Item>) -> Self {
        SmallVec { inner: v }
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = Vec<A::Item>;
    #[inline]
    fn deref(&self) -> &Vec<A::Item> {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<A::Item> {
        &mut self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    #[inline]
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    #[inline]
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array, T: PartialEq<A::Item>> PartialEq<[T]> for SmallVec<A> {
    #[inline]
    fn eq(&self, other: &[T]) -> bool {
        other == self.inner.as_slice()
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    #[inline]
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    #[inline]
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    #[inline]
    fn from(v: Vec<A::Item>) -> Self {
        SmallVec { inner: v }
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter_mut()
    }
}

/// `smallvec![...]` constructor macro, mirroring `vec![...]`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($elem:expr; $n:expr) => { $crate::SmallVec::from_vec(vec![$elem; $n]) };
    ($($x:expr),+ $(,)?) => { $crate::SmallVec::from_vec(vec![$($x),+]) };
}

#[cfg(feature = "serde")]
impl<A: Array> serde::Serialize for SmallVec<A>
where
    A::Item: serde::Serialize,
{
    fn serialize(&self) -> serde::Value {
        serde::Value::Seq(self.inner.iter().map(serde::Serialize::serialize).collect())
    }
}

#[cfg(feature = "serde")]
impl<A: Array> serde::Deserialize for SmallVec<A>
where
    A::Item: serde::Deserialize,
{
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(SmallVec {
            inner: Vec::<A::Item>::deserialize(v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_vec() {
        let mut s: SmallVec<[u32; 4]> = SmallVec::new();
        s.push(1);
        s.push(2);
        s.extend([3, 4]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().sum::<u32>(), 10);
        let collected: SmallVec<[u32; 4]> = (0..3).collect();
        assert_eq!(collected.as_slice(), &[0, 1, 2]);
        let m = smallvec![9u32, 8];
        let m: SmallVec<[u32; 2]> = m;
        assert_eq!(m.as_slice(), &[9, 8]);
    }
}
