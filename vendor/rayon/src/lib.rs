//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Every "parallel" iterator here is the corresponding *sequential* std
//! iterator: `par_iter()` et al. simply delegate to `iter()`. Results are
//! bit-identical to real rayon for the deterministic merge patterns this
//! workspace uses (`par_iter().map(..).collect()`); only wall-clock
//! parallelism is lost.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item;
    /// "Parallel" (here: sequential) owned iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type (a shared reference).
    type Item: 'data;
    /// "Parallel" (here: sequential) borrowing iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: 'data,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    #[inline]
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type (an exclusive reference).
    type Item: 'data;
    /// "Parallel" (here: sequential) mutably-borrowing iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: 'data,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    type Item = <&'data mut C as IntoIterator>::Item;
    #[inline]
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::join`.
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential stand-in for `rayon::scope` — runs the closure with a unit
/// scope token; spawned work must be driven by the closure itself.
#[inline]
pub fn scope<F, R>(f: F) -> R
where
    F: FnOnce() -> R,
{
    f()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let owned: Vec<u32> = v.clone().into_par_iter().collect();
        assert_eq!(owned, v);
    }
}
