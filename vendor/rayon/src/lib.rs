//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! The subset of the `par_iter` API this workspace uses, executed on the
//! [`hca_par`] scoped worker pool instead of a registry dependency. The pool
//! collects results **in input order**, so `par_iter().map(..).collect()` is
//! bit-identical to the sequential `iter().map(..).collect()` whatever the
//! thread count (`HCA_THREADS`, or the `sequential` feature to pin it at 1).
//!
//! Unlike real rayon there is no lazy adaptor algebra: `par_iter()` borrows
//! a slice, `map` stores the closure, and `collect`/`for_each` dispatch the
//! whole batch to the pool. That covers every call site here; anything
//! fancier should use `hca_par` directly.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type behind the references handed to `map`.
    type Elem: 'data;
    /// A "parallel iterator" over shared references.
    fn par_iter(&'data self) -> ParIter<'data, Self::Elem>;
}

/// Mutably borrowing entry point: `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type behind the references handed to `map`/`for_each`.
    type Elem: 'data;
    /// A "parallel iterator" over exclusive references.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Elem>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Elem = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Elem = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Elem = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Elem = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over shared references into a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Attach the per-element closure; executed by `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped batch awaiting `collect`.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, F> ParMap<'data, T, F>
where
    T: Sync,
{
    /// Run the batch on the pool and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
        C: FromIterator<R>,
    {
        hca_par::par_map(self.items, self.f).into_iter().collect()
    }
}

/// Parallel iterator over exclusive references into a slice.
pub struct ParIterMut<'data, T> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Attach the per-element closure; executed by `collect`.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'data, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }

    /// Mutate every element on the pool (contiguous chunks, no overlap).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        hca_par::par_map_mut(self.items, |t| f(t));
    }
}

/// A mutably-mapped batch awaiting `collect`.
pub struct ParMapMut<'data, T, F> {
    items: &'data mut [T],
    f: F,
}

impl<'data, T, F> ParMapMut<'data, T, F>
where
    T: Send,
{
    /// Run the batch on the pool and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromIterator<R>,
    {
        hca_par::par_map_mut(self.items, self.f)
            .into_iter()
            .collect()
    }
}

/// `rayon::join`, backed by [`hca_par::join`].
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    hca_par::join(a, b)
}

/// Sequential stand-in for `rayon::scope` — runs the closure with a unit
/// scope token; spawned work must be driven by the closure itself.
#[inline]
pub fn scope<F, R>(f: F) -> R
where
    F: FnOnce() -> R,
{
    f()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u32, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
        let old: Vec<u32> = v
            .par_iter_mut()
            .map(|x| {
                *x *= 2;
                *x
            })
            .collect();
        assert_eq!(old, vec![22, 24, 26]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "four");
        assert_eq!((a, b), (4, "four"));
    }
}
