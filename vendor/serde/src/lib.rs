//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of real serde's zero-copy visitor architecture, this stand-in
//! serialises through an owned [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * the companion `serde_json` stand-in converts [`Value`] to/from JSON
//!   text.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros from the sibling `serde_derive` stand-in, which mirror real
//! serde's data model: structs as JSON objects, newtype structs as their
//! inner value, fieldless enum variants as strings, payload variants as
//! externally tagged single-key objects. Maps with non-string keys — which
//! real `serde_json` rejects — serialise as sequences of `[key, value]`
//! pairs.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised tree, the interchange format between
/// [`Serialize`], [`Deserialize`] and the JSON front-end.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered object (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Shared null used when a struct field is absent.
static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; absent fields read as `Null` so `Option` fields
    /// deserialise to `None`.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The entries of an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(n as i64),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            Value::Float(n) if n.fract() == 0.0 && (0.0..1.9e19).contains(&n) => Some(n as u64),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// "expected X, found Y" convenience constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Render into the interchange tree.
    fn serialize(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the interchange tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! ser_de_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            #[inline]
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8 i16 i32 i64 isize u8 u16 u32);

macro_rules! ser_de_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            #[inline]
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u64 usize u128);

impl Serialize for f64 {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for bool {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    #[inline]
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    #[inline]
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl Serialize for () {
    #[inline]
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    #[inline]
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

// --------------------------------------------------------------- collections

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($( ($($t:ident . $i:tt),+) )*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::expected("sequence", v))?;
                let expected = [$( stringify!($i) ),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, found {} elements", items.len())));
                }
                Ok(($($t::deserialize(&items[$i])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Maps serialise as a sequence of `[key, value]` pairs so that non-string
/// keys (tuples, newtype ids) survive JSON.
fn serialize_map_entries<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect(),
    )
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, Error> {
    v.as_seq()
        .ok_or_else(|| Error::expected("sequence of [key, value] pairs", v))?
        .iter()
        .map(<(K, V)>::deserialize)
        .collect()
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Deterministic output: order by the serialised key's JSON-ish debug.
        let mut items: Vec<Value> = self
            .iter()
            .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
            .collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map_entries(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(deserialize_map_entries(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    #[inline]
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    #[inline]
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    /// Durations serialise as fractional seconds.
    #[inline]
    fn serialize(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let secs = v.as_f64().ok_or_else(|| Error::expected("number", v))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::custom("duration must be a non-negative number"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_with_tuple_keys_roundtrips() {
        let mut m: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        m.insert((1, 2), vec![3, 4]);
        m.insert((5, 6), vec![]);
        let v = m.serialize();
        let back: HashMap<(u32, u32), Vec<u32>> = HashMap::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn absent_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("missing"), &Value::Null);
        assert_eq!(v.field("a").as_i64(), Some(1));
    }
}
