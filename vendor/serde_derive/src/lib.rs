//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates impls of the *stand-in* `serde::Serialize`/`serde::Deserialize`
//! traits (`fn serialize(&self) -> Value` / `fn deserialize(&Value)`), not
//! real serde's visitor traits. Implemented with a hand-rolled token walker
//! — no `syn`/`quote` are available offline.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields → `Value::Map` keyed by field name;
//! * newtype structs → the inner value, transparently;
//! * tuple structs (arity ≥ 2) → `Value::Seq`;
//! * unit structs → `Value::Null`;
//! * enums: unit variants → `Value::Str(name)`, tuple/struct variants →
//!   externally tagged `{ name: payload }` like real serde;
//! * container attribute `#[serde(from = "T", into = "T")]`;
//! * field attribute `#[serde(flatten)]` (serialise side: splices the
//!   field's map into the parent; deserialise side: rebuilds the field from
//!   the parent map itself);
//! * field attributes `#[serde(default)]` and `#[serde(skip)]` (absent →
//!   `Default::default()`).
//!
//! Generic type parameters are not supported — the workspace derives only
//! concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------- parsing

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    flatten: bool,
    default: bool,
    skip: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// `#[serde(from = "...")]` type, if any.
    from: Option<String>,
    /// `#[serde(into = "...")]` type, if any.
    into: Option<String>,
    body: Body,
}

/// Pull the contents of every `#[serde(...)]` attribute group at the current
/// position, returning the combined attribute text and advancing past all
/// leading attributes.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> String {
    let mut serde_attrs = String::new();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner = g.stream().to_string();
                        if let Some(rest) = inner.strip_prefix("serde") {
                            serde_attrs.push_str(rest.trim());
                            serde_attrs.push(' ');
                        }
                        *pos += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    serde_attrs
}

/// Extract `key = "value"` from a flattened attribute text.
fn attr_string(attrs: &str, key: &str) -> Option<String> {
    let at = attrs.find(key)?;
    let rest = &attrs[at + key.len()..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

/// Skip a type (or discriminant expression) up to a top-level comma, tracking
/// `<`/`>` nesting so commas inside generics don't terminate early.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parse a `{ name: Type, ... }` field group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1; // name
        pos += 1; // ':'
        skip_to_comma(&tokens, &mut pos);
        pos += 1; // ','
        fields.push(Field {
            name,
            attrs: FieldAttrs {
                flatten: attrs.contains("flatten"),
                default: attrs.contains("default"),
                skip: attrs
                    .split(|c: char| !c.is_alphanumeric() && c != '_')
                    .any(|w| w == "skip"),
            },
        });
    }
    fields
}

/// Count the fields of a `( Type, ... )` tuple group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        skip_to_comma(&tokens, &mut pos);
        count += 1;
        pos += 1; // ','
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            break;
        };
        let name = name.to_string();
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g))
            }
            _ => Shape::Unit,
        };
        // Optional discriminant `= expr`, then the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                skip_to_comma(&tokens, &mut pos);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let attrs = take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic type `{name}` is not supported");
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
            other => panic!("serde stand-in derive: malformed struct body: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            other => panic!("serde stand-in derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    };

    Item {
        name,
        from: attr_string(&attrs, "from"),
        into: attr_string(&attrs, "into"),
        body,
    }
}

// ------------------------------------------------------------------- codegen

fn serialize_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut code = String::from("{ let mut __m: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let expr = access(&f.name);
        if f.attrs.flatten {
            code.push_str(&format!(
                "match serde::Serialize::serialize(&{expr}) {{\n\
                 serde::Value::Map(__entries) => __m.extend(__entries),\n\
                 __other => __m.push((\"{n}\".to_string(), __other)),\n\
                 }}\n",
                n = f.name
            ));
        } else {
            code.push_str(&format!(
                "__m.push((\"{n}\".to_string(), serde::Serialize::serialize(&{expr})));\n",
                n = f.name
            ));
        }
    }
    code.push_str("serde::Value::Map(__m) }");
    code
}

fn deserialize_named(fields: &[Field], ctor: &str) -> String {
    let mut code = format!(
        "let __m = __v.as_map().ok_or_else(|| serde::Error::expected(\"map\", __v))?;\n\
         let _ = __m;\n\
         Ok({ctor} {{\n"
    );
    for f in fields {
        if f.attrs.skip || (f.attrs.default && f.attrs.flatten) {
            code.push_str(&format!("{n}: Default::default(),\n", n = f.name));
        } else if f.attrs.flatten {
            code.push_str(&format!(
                "{n}: serde::Deserialize::deserialize(__v)?,\n",
                n = f.name
            ));
        } else if f.attrs.default {
            code.push_str(&format!(
                "{n}: match __v.field(\"{n}\") {{\n\
                 serde::Value::Null => Default::default(),\n\
                 __f => serde::Deserialize::deserialize(__f)?,\n\
                 }},\n",
                n = f.name
            ));
        } else {
            code.push_str(&format!(
                "{n}: serde::Deserialize::deserialize(__v.field(\"{n}\"))?,\n",
                n = f.name
            ));
        }
    }
    code.push_str("})");
    code
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into {
        format!(
            "let __conv: {into} = <Self as ::core::clone::Clone>::clone(self).into();\n\
             serde::Serialize::serialize(&__conv)"
        )
    } else {
        match &item.body {
            Body::Struct(Shape::Unit) => "serde::Value::Null".to_string(),
            Body::Struct(Shape::Tuple(1)) => "serde::Serialize::serialize(&self.0)".to_string(),
            Body::Struct(Shape::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            }
            Body::Struct(Shape::Named(fields)) => serialize_named(fields, |f| format!("self.{f}")),
            Body::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => arms.push_str(&format!(
                            "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                        )),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "serde::Serialize::serialize(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({binds_pat}) => serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                binds_pat = binds.join(", ")
                            ));
                        }
                        Shape::Named(fields) => {
                            let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                            let payload = serialize_named(fields, |f| f.to_string());
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {pat} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                                pat = pat.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.from {
        format!(
            "let __inner: {from} = serde::Deserialize::deserialize(__v)?;\n\
             Ok(<Self as ::core::convert::From<{from}>>::from(__inner))"
        )
    } else {
        match &item.body {
            Body::Struct(Shape::Unit) => format!("let _ = __v; Ok({name})"),
            Body::Struct(Shape::Tuple(1)) => {
                format!("Ok({name}(serde::Deserialize::deserialize(__v)?))")
            }
            Body::Struct(Shape::Tuple(n)) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_seq().ok_or_else(|| serde::Error::expected(\"sequence\", __v))?;\n\
                     if __items.len() != {n} {{\n\
                     return Err(serde::Error::custom(format!(\"expected {n} elements, found {{}}\", __items.len())));\n\
                     }}\n\
                     Ok({name}({items}))",
                    items = items.join(", ")
                )
            }
            Body::Struct(Shape::Named(fields)) => deserialize_named(fields, name),
            Body::Enum(variants) => {
                let mut str_arms = String::new();
                let mut map_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            str_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                        }
                        Shape::Tuple(n) => {
                            let build = if *n == 1 {
                                format!(
                                    "return Ok({name}::{vn}(serde::Deserialize::deserialize(__payload)?));"
                                )
                            } else {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("serde::Deserialize::deserialize(&__items[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "let __items = __payload.as_seq().ok_or_else(|| serde::Error::expected(\"sequence\", __payload))?;\n\
                                     if __items.len() != {n} {{\n\
                                     return Err(serde::Error::custom(\"wrong tuple-variant arity\"));\n\
                                     }}\n\
                                     return Ok({name}::{vn}({items}));",
                                    items = items.join(", ")
                                )
                            };
                            map_arms.push_str(&format!("\"{vn}\" => {{ {build} }}\n"));
                        }
                        Shape::Named(fields) => {
                            let build = deserialize_named(fields, &format!("{name}::{vn}"))
                                .replace("__v", "__payload");
                            map_arms.push_str(&format!(
                                "\"{vn}\" => {{ return (|| -> Result<Self, serde::Error> {{ {build} }})(); }}\n"
                            ));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {str_arms}\
                     __other => return Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __payload) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                     {map_arms}\
                     __other => return Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                     }},\n\
                     __other => return Err(serde::Error::expected(\"variant of {name}\", __other)),\n\
                     }}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
