//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides a deterministic xoshiro256** generator behind the subset of the
//! rand 0.8 API this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen_bool`, and
//! `rngs::StdRng`. Streams are NOT bit-compatible with real rand — only
//! self-consistent (same seed → same sequence).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`low..high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        sample_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types that can be sampled, stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo bias is < 2^-64 for the spans used here (well below
                // u64::MAX); acceptable for synthetic-graph generation.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

sample_int_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as real rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
