//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Converts the stand-in `serde::Value` tree to and from JSON text. The
//! output is ordinary JSON — objects keep insertion order, floats print via
//! Rust's shortest round-trip formatting — so files written here load in any
//! JSON consumer (including Chrome's trace viewer).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serialise a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialise a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialise a value as compact JSON into an [`std::io::Write`] sink.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Deserialise a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

/// Parse JSON text into a [`Value`] without rebuilding a concrete type.
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    parse(text)
}

// ------------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(n) => {
            if n.is_finite() {
                // Keep integral floats distinguishable from ints (`1.0`).
                if n.fract() == 0.0 && n.abs() < 1.0e15 {
                    let _ = write!(out, "{n:.1}");
                } else {
                    let _ = write!(out, "{n}");
                }
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_group(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_group(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_group(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                let rest = self.bytes.get(self.pos..self.pos + 6);
                                match rest {
                                    Some([b'\\', b'u', h @ ..]) => {
                                        let low = u32::from_str_radix(
                                            std::str::from_utf8(h)
                                                .map_err(|_| Error::custom("bad \\u escape"))?,
                                            16,
                                        )
                                        .map_err(|_| Error::custom("bad \\u escape"))?;
                                        self.pos += 6;
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                    }
                                    _ => return Err(Error::custom("lone surrogate")),
                                }
                            } else {
                                code
                            };
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // char boundaries is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fir\"8\n".into())),
            ("n".into(), Value::Int(-3)),
            (
                "xs".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("f".into(), Value::Float(1.0)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str_value(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::Int(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1\n  ]\n"));
        assert_eq!(from_str_value(&text).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, String)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "A\u{1F600}");
    }
}
