//! Deterministic case runner and RNG for the proptest stand-in.

use std::fmt;

/// Runner configuration, stand-in for `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to draw per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!`); the case is skipped.
    Reject(String),
    /// Assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Deterministic xoshiro256** generator used for all drawing.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via splitmix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: a stable per-test base seed, so every machine
/// and every run draws the same cases.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property test: draw `config.cases` cases, panic on the first
/// failure with the generated inputs, skip rejected cases.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let base = seed_for(name);
    let mut rejected = 0u32;
    for i in 0..config.cases {
        let mut rng = TestRng::from_seed(base.wrapping_add(u64::from(i)));
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(reason)) => panic!(
                "proptest `{name}` failed at case {i} (seed {seed}):\n{reason}\ninputs: {inputs}",
                seed = base.wrapping_add(u64::from(i)),
            ),
        }
    }
    if rejected == config.cases && config.cases > 0 {
        panic!("proptest `{name}`: every case was rejected by prop_assume!");
    }
}
