//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range/tuple/`any` strategies,
//! `collection::{vec, btree_set}`, `option::weighted`, the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros and a
//! deterministic case runner. Differences from real proptest:
//!
//! * no shrinking — a failing case reports its generated inputs verbatim;
//! * seeds derive from the test name, so runs are fully reproducible and
//!   identical across machines;
//! * rejected cases (`prop_assume!`) skip the case rather than re-drawing.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draw one value. (Real proptest builds a value *tree* for shrinking;
    /// this stand-in draws the value directly.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------------------- any::<T>()

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8 u16 u32 u64 usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, stand-in for `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// -------------------------------------------------------------------- ranges

macro_rules! strategy_int_range {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

strategy_int_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// -------------------------------------------------------------------- tuples

macro_rules! strategy_tuple {
    ($( ($($s:ident . $i:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --------------------------------------------------------------- collections

/// Collection strategies, stand-in for `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` of elements from `elem`, with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a *target* size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of elements from `elem`. The generated set may be smaller
    /// than the drawn size when duplicates collide (real proptest re-draws;
    /// this stand-in does not).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, stand-in for `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Option<T>` with a fixed `Some` probability.
    pub struct Weighted<S> {
        some_probability: f64,
        inner: S,
    }

    /// `Some(value)` with probability `some_probability`, else `None`.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> Weighted<S> {
        assert!(
            (0.0..=1.0).contains(&some_probability),
            "probability out of range"
        );
        Weighted {
            some_probability,
            inner,
        }
    }

    impl<S> Strategy for Weighted<S>
    where
        S: Strategy,
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.unit_f64() < self.some_probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// -------------------------------------------------------------------- macros

/// Declare property tests, stand-in for `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one `#[test]` fn per case body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            $crate::test_runner::run_cases(&($config), stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
    )*};
}

/// Assert inside a `proptest!` body, stand-in for `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Skip a case whose precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        let s = (0usize..100, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn collection_sizes_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(3);
        let s = crate::collection::vec(0usize..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 1usize..50, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x >= 1, "x = {x}");
            prop_assert_eq!(x * 2 / 2, x);
            let _ = flag;
        }
    }
}
