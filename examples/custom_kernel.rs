//! Bring your own kernel: build a complex-FIR loop body with the DDG
//! builder, check its analytical bounds, clusterise it, and export the
//! clusterised dataflow as graphviz for inspection.
//!
//! ```sh
//! cargo run --example custom_kernel --release > complex_fir.dot
//! dot -Tsvg complex_fir.dot -o complex_fir.svg   # if graphviz is installed
//! ```

use hca_repro::arch::DspFabric;
use hca_repro::ddg::{dot, DdgAnalysis, DdgBuilder, Opcode};
use hca_repro::hca::{run_hca, HcaConfig};

fn main() {
    // A 4-tap *complex* FIR: (ar + j·ai) · (br + j·bi) accumulated — the
    // radio-baseband cousin of the paper's audio/video kernels. Real and
    // imaginary accumulator recurrences, 4 complex loads, 4 complex
    // coefficient pairs.
    let mut b = DdgBuilder::default();
    let in_ptr = b.named(Opcode::AddrAdd, "in_ptr++");
    b.carried(in_ptr, in_ptr, 1);
    let mut re_terms = Vec::new();
    let mut im_terms = Vec::new();
    let mut addr = in_ptr;
    for k in 0..4 {
        // Interleaved I/Q samples: two loads per tap.
        let xr = b.op_with(Opcode::Load, &[addr]);
        addr = b.op_with(Opcode::AddrAdd, &[addr]);
        let xi = b.op_with(Opcode::Load, &[addr]);
        if k < 3 {
            addr = b.op_with(Opcode::AddrAdd, &[addr]);
        }
        let cr = b.named(Opcode::Const, format!("c{k}r"));
        let ci = b.named(Opcode::Const, format!("c{k}i"));
        // (xr + j·xi)(cr + j·ci) = (xr·cr − xi·ci) + j(xr·ci + xi·cr)
        let rr = b.op_with(Opcode::Mul, &[xr, cr]);
        let ii = b.op_with(Opcode::Mul, &[xi, ci]);
        let ri = b.op_with(Opcode::Mul, &[xr, ci]);
        let ir = b.op_with(Opcode::Mul, &[xi, cr]);
        re_terms.push(b.op_with(Opcode::Sub, &[rr, ii]));
        im_terms.push(b.op_with(Opcode::Add, &[ri, ir]));
    }
    let re = b.reduce_tree(Opcode::Add, &re_terms);
    let im = b.reduce_tree(Opcode::Add, &im_terms);
    let out_ptr = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out_ptr, out_ptr, 1);
    b.op_with(Opcode::Store, &[re, out_ptr]);
    let out2 = b.op_with(Opcode::AddrAdd, &[out_ptr]);
    b.op_with(Opcode::Store, &[im, out2]);
    let ddg = b.finish();

    eprintln!("{}", ddg.summary());
    let analysis = DdgAnalysis::compute(&ddg).unwrap();
    eprintln!(
        "MIIRec {}, critical path {} cycles, {} SCCs",
        analysis.mii_rec, analysis.levels.critical_path, analysis.num_sccs
    );

    let fabric = DspFabric::standard(8, 8, 8);
    let res = run_hca(&ddg, &fabric, &HcaConfig::default()).expect("clusterisable");
    eprintln!(
        "clusterised: legal={}, final MII {}, {} recvs",
        res.is_legal(),
        res.mii.final_mii,
        res.final_program.num_recvs()
    );

    // Graphviz with one colour per cluster-set (stdout).
    let placement = res.placement.clone();
    println!(
        "{}",
        dot::to_dot(&ddg, |n| placement.get(&n).map(|cn| fabric.cn_path(*cn)[0]))
    );
}
