//! Quickstart: clusterise one loop kernel onto DSPFabric and inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use hca_repro::arch::DspFabric;
use hca_repro::ddg::{DdgBuilder, Opcode};
use hca_repro::hca::{run_hca, HcaConfig};

fn main() {
    // 1. Describe the loop body as a Data Dependency Graph. This is a small
    //    dot-product-style kernel: two streamed loads, multiply, a carried
    //    accumulator, and a store.
    let mut b = DdgBuilder::default();
    let ptr_a = b.named(Opcode::AddrAdd, "a_ptr++");
    b.carried(ptr_a, ptr_a, 1); // pointer recurrence, distance 1
    let ptr_b = b.named(Opcode::AddrAdd, "b_ptr++");
    b.carried(ptr_b, ptr_b, 1);
    let a = b.op_with(Opcode::Load, &[ptr_a]);
    let x = b.op_with(Opcode::Load, &[ptr_b]);
    let prod = b.op_with(Opcode::Mul, &[a, x]);
    let acc = b.op_with(Opcode::Mac, &[prod]);
    b.carried(acc, acc, 1); // the accumulator recurrence
    let out = b.named(Opcode::AddrAdd, "out_ptr++");
    b.carried(out, out, 1);
    b.op_with(Opcode::Store, &[acc, out]);
    let ddg = b.finish();
    println!("{}", ddg.summary());

    // 2. Pick the target machine: the paper's 64-CN DSPFabric with MUX
    //    capacities N = M = K = 8 (4 cluster-sets × 4 clusters × 4 CNs).
    let fabric = DspFabric::standard(8, 8, 8);

    // 3. Run Hierarchical Cluster Assignment.
    let result = run_hca(&ddg, &fabric, &HcaConfig::default()).expect("clusterisable");

    // 4. Inspect: placements, the configured topology, and the MII report.
    println!("\nplacement:");
    let mut nodes: Vec<_> = result.placement.iter().collect();
    nodes.sort();
    for (node, cn) in nodes {
        println!(
            "  {node} ({}) -> {cn} (path {:?})",
            ddg.node(*node).op,
            fabric.cn_path(*cn)
        );
    }
    println!("\nconfigured wires: {}", result.topology.num_wires());
    println!(
        "receive primitives inserted: {}",
        result.final_program.num_recvs()
    );
    println!(
        "MII: recurrence {}, resource {}, theoretical optimum {}, final {}",
        result.mii.mii_rec, result.mii.mii_res, result.mii.theoretical, result.mii.final_mii
    );
    println!(
        "legal clusterisation: {}",
        if result.is_legal() { "yes" } else { "NO" }
    );
}
