//! Architecture exploration: how MUX bandwidth (the N/M/K parameters of
//! §2.2) shapes clusterisation quality, and how the same SEE engine drives
//! the flat ring-topology RCP machine of §2.1.
//!
//! ```sh
//! cargo run --example architecture_exploration --release
//! ```

use hca_repro::arch::{DspFabric, Rcp};
use hca_repro::ddg::DdgAnalysis;
use hca_repro::hca::{run_hca, HcaConfig};
use hca_repro::pg::{ArchConstraints, Pg};
use hca_repro::see::{See, SeeConfig};

fn main() {
    // --- Part 1: DSPFabric bandwidth sweep on the IDCT row kernel -------
    let kernel = hca_repro::kernels::idct::build();
    println!("idcthor on 64-CN DSPFabric, sweeping the MUX capacities:\n");
    println!(
        "{:>7} {:>10} {:>7} {:>8} {:>8}",
        "N=M=K", "final MII", "legal", "wires", "recvs"
    );
    for cap in [8usize, 6, 4, 3, 2] {
        let fabric = DspFabric::standard(cap, cap, cap);
        match run_hca(&kernel.ddg, &fabric, &HcaConfig::default()) {
            Ok(res) => println!(
                "{:>7} {:>10} {:>7} {:>8} {:>8}",
                cap,
                res.mii.final_mii,
                if res.is_legal() { "yes" } else { "NO" },
                res.stats.wires,
                res.final_program.num_recvs(),
            ),
            Err(e) => println!("{cap:>7} failed: {e}"),
        }
    }

    // --- Part 2: hierarchy shape at constant CN count --------------------
    println!("\nsame 16 CNs, different hierarchy shapes (2-level machines):\n");
    for (sets, cns) in [(2usize, 8usize), (4, 4), (8, 2)] {
        let fabric = DspFabric::two_level(sets, cns, 4);
        match run_hca(&kernel.ddg, &fabric, &HcaConfig::default()) {
            Ok(res) => println!(
                "  {sets} groups × {cns} CNs: final MII {} (legal: {})",
                res.mii.final_mii,
                res.is_legal()
            ),
            Err(e) => println!("  {sets} groups × {cns} CNs: failed: {e}"),
        }
    }

    // --- Part 3: the flat RCP ring (§2.1) through the same SEE -----------
    // RCP needs no hierarchy: its Pattern Graph is the ring itself, and one
    // SEE run performs the whole Instruction Cluster Assignment.
    println!("\nFIR-8 on the 8-cluster RCP ring (reach 2, 2 input ports):");
    let fir = hca_repro::kernels::dspstone::fir(8);
    let analysis = DdgAnalysis::compute(&fir).unwrap();
    let rcp = Rcp::figure1();
    let pg = Pg::from_rcp(&rcp);
    let constraints = ArchConstraints::for_rcp(&rcp);
    let see = See::new(&fir, &analysis, &pg, constraints, SeeConfig::default());
    match see.run(None) {
        Ok(out) => {
            println!(
                "  assigned {} instructions, estimated MII {}, {} copies, {} routed",
                out.assigned.assignment.len(),
                out.est_mii,
                out.assigned.total_copies(),
                out.stats.routed_nodes,
            );
            for c in pg.cluster_ids() {
                let instrs = out.assigned.instructions_of(c);
                if !instrs.is_empty() {
                    println!("  cluster {c}: {} instructions", instrs.len());
                }
            }
        }
        Err(e) => println!("  failed: {e}"),
    }
}
