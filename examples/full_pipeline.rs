//! The whole toolchain on a real kernel: HCA → modulo scheduling →
//! kernel-only folding → cycle-level simulation, verified against the
//! sequential reference — the flow the paper's §5 planned to run on silicon.
//!
//! ```sh
//! cargo run --example full_pipeline --release [kernel] [trip]
//! # kernel ∈ {fir2dim, idcthor, mpeg2inter, h264deblocking}, default fir2dim
//! ```

use hca_repro::hca::run_hca_portfolio;
use hca_repro::sched::{modulo_schedule, register_pressure, KernelSchedule};
use hca_repro::sim::verify_execution;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fir2dim".into());
    let trip: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let kernel = hca_repro::kernels::table1_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| {
            eprintln!("unknown kernel {name}; try fir2dim / idcthor / mpeg2inter / h264deblocking");
            std::process::exit(1);
        });
    let fabric = hca_repro::arch::DspFabric::standard(8, 8, 8);

    println!("kernel {}: {}", kernel.name, kernel.ddg.summary());

    // Cluster assignment (portfolio of search configurations, best result).
    let res = run_hca_portfolio(&kernel.ddg, &fabric).expect("clusterisable");
    println!(
        "HCA: legal={}, final MII bound {}, {} wires, {} recvs, {} routes",
        res.is_legal(),
        res.mii.final_mii,
        res.stats.wires,
        res.final_program.num_recvs(),
        res.final_program.route_nodes.len(),
    );

    // Modulo scheduling at the computed lower bound.
    let sched =
        modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).expect("schedulable");
    println!(
        "modulo schedule: II = {} (bound {}), {} stages",
        sched.ii, res.mii.final_mii, sched.stages
    );

    // Kernel-only folding + register pressure.
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
    let pressure = register_pressure(&res.final_program, &fabric, &sched);
    println!(
        "kernel: {:.0}% issue-slot utilisation, worst rotating-register demand {}",
        folded.utilization() * 100.0,
        pressure.iter().max().unwrap()
    );

    // Execute and verify.
    let report = verify_execution(&kernel.ddg, &res.final_program, &fabric, &folded, trip)
        .expect("simulation matches the sequential reference");
    println!(
        "simulated {} iterations in {} cycles ({:.1} cycles/iter, ideal {}), \
         {} stored values verified ✓",
        report.trip,
        report.cycles,
        report.cycles as f64 / report.trip as f64,
        sched.ii,
        report.stores_checked,
    );
}
